// Package flowdb implements FlowDB (Section VI): an analytic engine that
// takes Flowtree summaries as input, stores and indexes them by location
// and time interval, and uses them to answer FlowQL queries. FlowDB is
// where exported Flowtrees from many data stores and epochs meet (Figure 5,
// step 4) — and where every FlowQL query lands, so the index is organized
// for concurrent interactive reads rather than for the writer.
//
// # Segmented index
//
// Rows are partitioned into per-location segments, each a run of rows kept
// ordered by epoch start. InsertBatch splits the batch by location and
// appends each group to its segment — epoch exports arrive in time order,
// so the common case is a pure append, and an out-of-order batch merges two
// sorted runs of one segment only; nothing ever re-sorts the whole index.
// Select binary-searches each segment for the window boundaries (the upper
// bound directly, the lower bound through the segment's widest row, so
// variable-width epochs cannot be skipped) and touches O(log n + matches)
// rows instead of scanning every row in the database.
//
// # Concurrency
//
// The index is guarded by an RWMutex: concurrent Selects share the read
// lock and only InsertBatch/Evict write. Row matching is the only work done
// under the lock — the trees themselves are collected by reference (stored
// trees are immutable once inserted) and merged entirely outside it, via a
// parallel reduction: worker goroutines fold chunk-wise partial unions with
// flowtree.MergeAll and one final fold combines the partials, mirroring the
// sharded seal fan-in. Queries therefore neither serialize on each other
// nor stall the epoch-export writer for the duration of a merge.
//
// # Memoized queries and single-flight coalescing
//
// Repeated dashboard-style queries hit a generation-stamped memo cache
// keyed by (locations, window): every InsertBatch and Evict bumps the
// DB generation, which atomically invalidates all cached merges, so a hit
// can never serve a tree that predates a write. Hits cost one structural
// clone of the cached merge — independent of how many rows the window
// covers. Cold misses coalesce: concurrent Selects for the same
// (locations, window) at the same generation join a single in-flight
// merge — the leader runs it once and counts the one miss, every caller
// (leader included) gets its own clone of the shared result, and the
// joiners are counted as coalesced waiters in CacheStats. The flight key
// includes the generation, so a query racing a write never joins a merge
// of the older snapshot. Select always returns a tree owned by the
// caller.
//
// # Standing views
//
// Polling Select re-pays the merge every epoch, because a write
// invalidates the whole memo cache. Subscribe instead registers the
// (locations, window) once and maintains the merged result across
// writes: InsertBatch folds just the delta rows matching each view into
// its tree — one MergeAll per view per batch, O(delta) — trailing
// windows slide with the data clock, and Evict dirties only views whose
// earliest merged row actually precedes the cut. Invalidated views
// rebuild lazily through the same binary-searched segment index Select
// uses, never a flat re-scan. See View.
package flowdb

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"megadata/internal/flowtree"
)

// Row is one indexed summary: a Flowtree covering [Start, Start+Width) at
// one location.
type Row struct {
	Location string
	Start    time.Time
	Width    time.Duration
	Tree     *flowtree.Tree
}

// End returns the exclusive end of the row's interval.
func (r Row) End() time.Time { return r.Start.Add(r.Width) }

// Errors returned by FlowDB.
var (
	ErrBadRow = errors.New("flowdb: invalid row")
	ErrNoData = errors.New("flowdb: no summaries match")
)

// segment holds one location's rows ordered by Start (ties keep insertion
// order). maxWidth is the widest row ever inserted — the slack the
// window lower-bound search must allow — and maxEnd the latest end, so
// TimeBounds is O(locations).
type segment struct {
	rows     []Row
	maxWidth time.Duration
	maxEnd   time.Time
}

// DB is an in-memory FlowDB. Safe for concurrent use: readers share an
// RWMutex and all tree merging happens outside it.
type DB struct {
	mu    sync.RWMutex
	segs  map[string]*segment
	locs  []string // sorted distinct locations, kept in sync with segs
	total int
	gen   uint64 // bumped by InsertBatch and Evict; stamps cache entries

	mergeWorkers int
	cache        *memoCache

	// Single-flight table for cold Selects: one merge per distinct
	// (memo key, generation) in flight at a time, regardless of fan-in.
	flightMu  sync.Mutex
	flight    map[flightKey]*flightCall
	coalesced atomic.Uint64
	mergeGate func() // test seam: blocks the flight leader before its merge

	// Standing views (see view.go). views holds the maintenance cores;
	// viewIndex dedups identical subscriptions onto one core by their
	// canonical (locations, window, budget) key.
	viewMu    sync.Mutex
	views     map[int64]*viewCore
	viewIndex map[string]*viewCore
	nextView  int64
}

// flightKey identifies one coalescable cold merge. The generation is part
// of the key so a Select racing a write never joins a merge taken against
// the older snapshot.
type flightKey struct {
	key string
	gen uint64
}

// flightCall is one in-flight cold merge. tree is published exactly once
// (before done closes), then immutable — leader and waiters all clone it.
type flightCall struct {
	done chan struct{}
	tree *flowtree.Tree
	n    int
	err  error
}

// Option configures a DB.
type Option func(*DB)

// WithMergeWorkers bounds the parallel merge reduction of Select (default
// GOMAXPROCS; 1 degenerates to the serial clone-and-merge fold).
func WithMergeWorkers(n int) Option {
	return func(db *DB) {
		if n < 1 {
			n = 1
		}
		db.mergeWorkers = n
	}
}

// WithCacheEntries bounds the memoized query cache (default 128 merged
// trees; 0 disables memoization entirely).
func WithCacheEntries(n int) Option {
	return func(db *DB) {
		if n <= 0 {
			db.cache = nil
			return
		}
		db.cache = newMemoCache(n)
	}
}

// defaultCacheEntries bounds the memo cache when no option overrides it.
const defaultCacheEntries = 128

// New builds an empty FlowDB.
func New(opts ...Option) *DB {
	db := &DB{
		segs:         make(map[string]*segment),
		mergeWorkers: runtime.GOMAXPROCS(0),
		cache:        newMemoCache(defaultCacheEntries),
		flight:       make(map[flightKey]*flightCall),
		views:        make(map[int64]*viewCore),
		viewIndex:    make(map[string]*viewCore),
	}
	for _, opt := range opts {
		opt(db)
	}
	return db
}

// Insert indexes a summary. The tree is stored as-is and must not be
// mutated afterwards; callers that keep mutating a live tree must insert a
// Clone. (Immutability of stored trees is what lets Select merge them
// outside the index lock.)
func (db *DB) Insert(r Row) error {
	return db.InsertBatch([]Row{r})
}

// InsertBatch indexes a batch of summaries under one lock acquisition —
// the central writer of a pipelined epoch export hands all sites' decoded
// rows over in one call. The batch is split by location and appended to
// the per-location segments; rows arriving in epoch order (the export
// pipeline always does) are pure appends, with no index re-sort anywhere.
// Rows are validated up front; an invalid row rejects the whole batch and
// indexes nothing.
func (db *DB) InsertBatch(rows []Row) error {
	for _, r := range rows {
		if r.Location == "" || r.Tree == nil || r.Width <= 0 {
			return fmt.Errorf("%w: need location, tree and positive width", ErrBadRow)
		}
	}
	if len(rows) == 0 {
		return nil
	}
	// Sort a copy of the batch by (location, start): one pass then yields
	// each location's rows as a ready-ordered run. Only the batch is
	// sorted, never the index.
	batch := make([]Row, len(rows))
	copy(batch, rows)
	sort.SliceStable(batch, func(i, j int) bool {
		if batch[i].Location != batch[j].Location {
			return batch[i].Location < batch[j].Location
		}
		return batch[i].Start.Before(batch[j].Start)
	})
	db.mu.Lock()
	for lo := 0; lo < len(batch); {
		hi := lo + 1
		for hi < len(batch) && batch[hi].Location == batch[lo].Location {
			hi++
		}
		db.segment(batch[lo].Location).insertRun(batch[lo:hi])
		lo = hi
	}
	db.total += len(batch)
	db.gen++
	gen := db.gen
	db.mu.Unlock()
	// Maintain standing views outside the index lock: each view filters
	// the batch against its (locations, window) and folds the matching
	// delta in — readers keep selecting the committed index meanwhile.
	if views := db.snapshotViews(); len(views) > 0 {
		var maxEnd time.Time
		for i := range batch {
			if end := batch[i].End(); end.After(maxEnd) {
				maxEnd = end
			}
		}
		for _, v := range views {
			v.applyInsert(batch, maxEnd, gen)
		}
	}
	return nil
}

// segment returns the location's segment, creating it (and registering the
// location in the sorted location list) on first use. Callers hold the
// write lock.
func (db *DB) segment(loc string) *segment {
	seg, ok := db.segs[loc]
	if !ok {
		seg = &segment{}
		db.segs[loc] = seg
		i := sort.SearchStrings(db.locs, loc)
		db.locs = append(db.locs, "")
		copy(db.locs[i+1:], db.locs[i:])
		db.locs[i] = loc
	}
	return seg
}

// insertRun folds a start-ordered run of same-location rows into the
// segment: a pure append when the run does not precede the existing tail,
// otherwise one linear merge of the two sorted runs.
func (s *segment) insertRun(run []Row) {
	for _, r := range run {
		if r.Width > s.maxWidth {
			s.maxWidth = r.Width
		}
		if end := r.End(); end.After(s.maxEnd) {
			s.maxEnd = end
		}
	}
	if len(s.rows) == 0 || !run[0].Start.Before(s.rows[len(s.rows)-1].Start) {
		s.rows = append(s.rows, run...)
		return
	}
	merged := make([]Row, 0, len(s.rows)+len(run))
	i, j := 0, 0
	for i < len(s.rows) && j < len(run) {
		// Existing rows win ties, preserving insertion order.
		if !run[j].Start.Before(s.rows[i].Start) {
			merged = append(merged, s.rows[i])
			i++
		} else {
			merged = append(merged, run[j])
			j++
		}
	}
	merged = append(merged, s.rows[i:]...)
	merged = append(merged, run[j:]...)
	s.rows = merged
}

// overlap appends the trees of rows overlapping [from, to) to out and
// folds the earliest matched row end into minEnd (zero = none matched
// yet) — the quantity view slide/evict fast paths compare against. Both
// window boundaries are binary searches: rows are start-ordered, and the
// lower bound backs off by the segment's widest row so no long epoch
// straddling the window start is skipped.
func (s *segment) overlap(out []*flowtree.Tree, minEnd time.Time, from, to time.Time) ([]*flowtree.Tree, time.Time) {
	hi := sort.Search(len(s.rows), func(i int) bool { return !s.rows[i].Start.Before(to) })
	lo := sort.Search(hi, func(i int) bool { return s.rows[i].Start.Add(s.maxWidth).After(from) })
	for i := lo; i < hi; i++ {
		if end := s.rows[i].End(); end.After(from) {
			out = append(out, s.rows[i].Tree)
			if minEnd.IsZero() || end.Before(minEnd) {
				minEnd = end
			}
		}
	}
	return out, minEnd
}

// Len returns the number of indexed rows.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.total
}

// Locations returns the distinct locations present, sorted.
func (db *DB) Locations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, len(db.locs))
	copy(out, db.locs)
	return out
}

// TimeBounds returns the earliest start and latest end across all rows;
// ok is false when the DB is empty.
func (db *DB) TimeBounds() (from, to time.Time, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.total == 0 {
		return time.Time{}, time.Time{}, false
	}
	first := true
	for _, seg := range db.segs {
		if len(seg.rows) == 0 {
			continue
		}
		if start := seg.rows[0].Start; first || start.Before(from) {
			from = start
		}
		if first || seg.maxEnd.After(to) {
			to = seg.maxEnd
		}
		first = false
	}
	return from, to, true
}

// Select merges all summaries overlapping [from, to) at the given locations
// (nil or empty = all locations) into a fresh tree — the paper's
// "A12 = compress(A1 ∪ A2)" across both time and space — and reports how
// many summaries the merge combined. The result inherits the first matching
// tree's configuration (locations in sorted order, rows in start order) and
// is owned by the caller: mutating it never affects the index or the memo
// cache. Matching runs under the shared read lock; the merge itself runs
// outside all locks as a parallel reduction over chunk-wise partial unions.
func (db *DB) Select(locations []string, from, to time.Time) (*flowtree.Tree, int, error) {
	key, memoize := memoKey(locations, from, to)
	memoize = memoize && db.cache != nil
	gen := db.generation()
	if memoize {
		if tree, n, ok := db.cache.get(key, gen); ok {
			return tree.Clone(), n, nil
		}
	}
	// Cold: coalesce identical concurrent misses into one merge. The
	// flight key carries the generation, so a caller racing a write never
	// joins a merge of the older snapshot — it starts (or joins) its own.
	fk := flightKey{key: key, gen: gen}
	db.flightMu.Lock()
	if c, ok := db.flight[fk]; ok {
		db.flightMu.Unlock()
		db.coalesced.Add(1)
		<-c.done
		if c.err != nil {
			return nil, 0, c.err
		}
		return c.tree.Clone(), c.n, nil
	}
	c := &flightCall{done: make(chan struct{})}
	db.flight[fk] = c
	db.flightMu.Unlock()
	c.tree, c.n, c.err = db.selectCold(key, memoize, locations, from, to)
	db.flightMu.Lock()
	delete(db.flight, fk)
	db.flightMu.Unlock()
	close(c.done)
	if c.err != nil {
		return nil, 0, c.err
	}
	return c.tree.Clone(), c.n, nil
}

// selectCold is the flight leader's path: match under the read lock,
// merge outside all locks, memoize. It counts the flight's single cache
// miss — waiters coalesce onto this merge without touching the counters.
// The returned tree is shared (cache + any waiters) and must be cloned,
// never handed out directly.
func (db *DB) selectCold(key string, memoize bool, locations []string, from, to time.Time) (*flowtree.Tree, int, error) {
	if memoize {
		db.cache.miss()
	}
	if db.mergeGate != nil {
		db.mergeGate()
	}
	matches, gen := db.match(locations, from, to)
	if len(matches) == 0 {
		return nil, 0, fmt.Errorf("%w: locations=%v window=[%v,%v)", ErrNoData, locations, from, to)
	}
	merged, err := db.mergeMatches(matches)
	if err != nil {
		return nil, 0, err
	}
	if memoize {
		// The cache owns the merged tree, stamped with the generation the
		// match snapshot was taken at; a write in the meantime bumped the
		// generation and the entry is dead on arrival, never served.
		db.cache.put(key, gen, merged, len(matches))
	}
	return merged, len(matches), nil
}

// generation reads the current write generation.
func (db *DB) generation() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.gen
}

// match collects, under the read lock, references to every stored tree
// overlapping the window at the wanted locations, plus the generation the
// snapshot was taken at. Stored trees are immutable, so the references
// stay valid after the lock is released.
func (db *DB) match(locations []string, from, to time.Time) ([]*flowtree.Tree, uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*flowtree.Tree
	if len(locations) == 0 {
		for _, loc := range db.locs {
			out, _ = db.segs[loc].overlap(out, time.Time{}, from, to)
		}
		return out, db.gen
	}
	seen := make(map[string]bool, len(locations))
	for _, loc := range locations {
		if seen[loc] {
			continue
		}
		seen[loc] = true
		if seg, ok := db.segs[loc]; ok {
			out, _ = seg.overlap(out, time.Time{}, from, to)
		}
	}
	return out, db.gen
}

// mergeChunkMin is the smallest number of trees worth a dedicated merge
// worker; below it goroutine and partial-clone overhead beats the
// parallelism.
const mergeChunkMin = 16

// mergeMatches folds the matched trees into one fresh tree outside all
// locks. Large selections run as a parallel reduction: each worker clones
// its chunk's first tree and folds the rest in with one MergeAll (one
// aggregate rebuild, one budget compression per chunk — the same fan-in
// shape as the sharded seal), and a final MergeAll combines the partial
// unions with one last budget compression.
func (db *DB) mergeMatches(matches []*flowtree.Tree) (*flowtree.Tree, error) {
	nw := db.mergeWorkers
	if max := (len(matches) + mergeChunkMin - 1) / mergeChunkMin; nw > max {
		nw = max
	}
	if nw <= 1 {
		merged := matches[0].Clone()
		if err := merged.MergeAll(matches[1:]...); err != nil {
			return nil, fmt.Errorf("flowdb: merge selection: %w", err)
		}
		return merged, nil
	}
	partials := make([]*flowtree.Tree, nw)
	errs := make([]error, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo, hi := w*len(matches)/nw, (w+1)*len(matches)/nw
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial := matches[lo].Clone()
			errs[w] = partial.MergeAll(matches[lo+1 : hi]...)
			partials[w] = partial
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("flowdb: merge selection: %w", err)
		}
	}
	merged := partials[0]
	if err := merged.MergeAll(partials[1:]...); err != nil {
		return nil, fmt.Errorf("flowdb: merge selection: %w", err)
	}
	return merged, nil
}

// Rows returns a copy of the index sorted by (start, location) —
// diagnostics and tests; the live index never materializes this view.
func (db *DB) Rows() []Row {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Row, 0, db.total)
	for _, loc := range db.locs {
		out = append(out, db.segs[loc].rows...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].Location < out[j].Location
	})
	return out
}

// Evict drops rows whose end is before cutoff, returning how many were
// dropped (FlowDB retention is managed by the hosting data store). The
// compacted tails are zeroed so the dropped trees are actually reclaimable
// — a retained backing array must not pin folded epochs — and emptied
// locations disappear from the index.
func (db *DB) Evict(cutoff time.Time) int {
	db.mu.Lock()
	dropped := 0
	for loc, seg := range db.segs {
		kept := seg.rows[:0]
		for _, r := range seg.rows {
			if r.End().Before(cutoff) {
				dropped++
				continue
			}
			kept = append(kept, r)
		}
		tail := seg.rows[len(kept):]
		for i := range tail {
			tail[i] = Row{}
		}
		seg.rows = kept
		if len(kept) == 0 {
			delete(db.segs, loc)
			i := sort.SearchStrings(db.locs, loc)
			db.locs = append(db.locs[:i], db.locs[i+1:]...)
			continue
		}
		seg.maxEnd = time.Time{}
		for _, r := range kept {
			if end := r.End(); end.After(seg.maxEnd) {
				seg.maxEnd = end
			}
		}
	}
	db.total -= dropped
	if dropped > 0 {
		db.gen++
	}
	gen := db.gen
	db.mu.Unlock()
	if dropped > 0 {
		for _, v := range db.snapshotViews() {
			v.applyEvict(cutoff, gen)
		}
	}
	return dropped
}

// CacheStats snapshots the query-path counters: memo cache hits, misses
// (one per cold merge actually run — coalesced waiters don't count),
// live cached entries, and how many Selects rode an in-flight merge
// instead of running their own. Hits/Misses/Entries are zero when the
// cache is disabled; Coalesced still counts.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Entries   uint64
	Coalesced uint64
}

// CacheStats reports the query-path counters.
func (db *DB) CacheStats() CacheStats {
	st := CacheStats{Coalesced: db.coalesced.Load()}
	if db.cache != nil {
		st.Hits, st.Misses, st.Entries = db.cache.snapshot()
	}
	return st
}
