package flowdb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func tree(t *testing.T, bytes uint64, opts ...flowtree.Option) *flowtree.Tree {
	t.Helper()
	tr, err := flowtree.New(0, opts...)
	if err != nil {
		t.Fatal(err)
	}
	tr.Add(flow.Record{
		Key:     flow.Exact(flow.ProtoTCP, 0x0A000001, 0xC0A80105, 40000, 443),
		Packets: 1, Bytes: bytes,
	})
	return tr
}

func TestInsertValidation(t *testing.T) {
	db := New()
	cases := []Row{
		{},
		{Location: "a", Width: time.Hour},    // nil tree
		{Location: "a", Tree: tree(t, 1)},    // zero width
		{Tree: tree(t, 1), Width: time.Hour}, // no location
		{Location: "a", Tree: tree(t, 1), Width: -1}, // negative width
	}
	for i, r := range cases {
		if err := db.Insert(r); !errors.Is(err, ErrBadRow) {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestSelectMergesOverlapping(t *testing.T) {
	db := New()
	_ = db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 100)})
	_ = db.Insert(Row{Location: "a", Start: t0.Add(time.Hour), Width: time.Hour, Tree: tree(t, 200)})
	_ = db.Insert(Row{Location: "b", Start: t0, Width: time.Hour, Tree: tree(t, 400)})

	all, _, err := db.Select(nil, t0, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if all.Total().Bytes != 700 {
		t.Errorf("all = %d", all.Total().Bytes)
	}
	onlyA, _, err := db.Select([]string{"a"}, t0, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if onlyA.Total().Bytes != 300 {
		t.Errorf("a = %d", onlyA.Total().Bytes)
	}
	// A window strictly inside the first epoch still picks it up
	// (overlap semantics).
	sub, _, err := db.Select([]string{"a"}, t0.Add(10*time.Minute), t0.Add(20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if sub.Total().Bytes != 100 {
		t.Errorf("sub-window = %d", sub.Total().Bytes)
	}
}

func TestSelectIsolation(t *testing.T) {
	// Select must return an independent tree: mutating it must not
	// corrupt the stored rows.
	db := New()
	_ = db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 100)})
	got, _, err := db.Select(nil, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	got.Add(flow.Record{Key: flow.Exact(flow.ProtoUDP, 1, 2, 3, 4), Packets: 1, Bytes: 999})
	again, _, _ := db.Select(nil, t0, t0.Add(time.Hour))
	if again.Total().Bytes != 100 {
		t.Errorf("stored row mutated: %d", again.Total().Bytes)
	}
}

func TestSelectStepMismatch(t *testing.T) {
	db := New()
	_ = db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 1)})
	_ = db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 1, flowtree.WithStepBits(4))})
	if _, _, err := db.Select(nil, t0, t0.Add(time.Hour)); err == nil {
		t.Error("merging different-step trees must error")
	}
}

func TestRowsSortedDeterministically(t *testing.T) {
	db := New()
	_ = db.Insert(Row{Location: "b", Start: t0, Width: time.Hour, Tree: tree(t, 1)})
	_ = db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 1)})
	_ = db.Insert(Row{Location: "c", Start: t0.Add(-time.Hour), Width: time.Hour, Tree: tree(t, 1)})
	rows := db.Rows()
	if rows[0].Location != "c" || rows[1].Location != "a" || rows[2].Location != "b" {
		t.Errorf("order = %v,%v,%v", rows[0].Location, rows[1].Location, rows[2].Location)
	}
}

func TestConcurrentInsertSelect(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = db.Insert(Row{
					Location: string(rune('a' + w)),
					Start:    t0.Add(time.Duration(i) * time.Minute),
					Width:    time.Minute,
					Tree:     tree(t, 10),
				})
				_, _, _ = db.Select(nil, t0, t0.Add(time.Hour))
			}
		}()
	}
	wg.Wait()
	if db.Len() != 200 {
		t.Errorf("Len = %d", db.Len())
	}
	merged, _, err := db.Select(nil, t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if merged.Total().Bytes != 2000 {
		t.Errorf("merged bytes = %d", merged.Total().Bytes)
	}
}

func TestLocationsTimeBoundsEvict(t *testing.T) {
	db := New()
	if _, _, ok := db.TimeBounds(); ok {
		t.Error("empty DB reported bounds")
	}
	if got := db.Locations(); len(got) != 0 {
		t.Errorf("empty Locations = %v", got)
	}
	_ = db.Insert(Row{Location: "b", Start: t0, Width: time.Hour, Tree: tree(t, 1)})
	_ = db.Insert(Row{Location: "a", Start: t0.Add(2 * time.Hour), Width: time.Hour, Tree: tree(t, 1)})
	locs := db.Locations()
	if len(locs) != 2 || locs[0] != "a" || locs[1] != "b" {
		t.Errorf("Locations = %v", locs)
	}
	from, to, ok := db.TimeBounds()
	if !ok || !from.Equal(t0) || !to.Equal(t0.Add(3*time.Hour)) {
		t.Errorf("TimeBounds = %v %v %v", from, to, ok)
	}
	if n := db.Evict(t0.Add(90 * time.Minute)); n != 1 {
		t.Errorf("Evict = %d", n)
	}
	if db.Len() != 1 {
		t.Errorf("Len after Evict = %d", db.Len())
	}
	// Evicting everything leaves an empty, reusable DB.
	if n := db.Evict(t0.Add(100 * time.Hour)); n != 1 {
		t.Errorf("second Evict = %d", n)
	}
	if _, _, ok := db.TimeBounds(); ok {
		t.Error("bounds after full evict")
	}
}

func TestInsertBatch(t *testing.T) {
	db := New()
	tr := tree(t, 100)
	rows := []Row{
		{Location: "b", Start: t0.Add(time.Minute), Width: time.Minute, Tree: tr},
		{Location: "a", Start: t0, Width: time.Minute, Tree: tr},
		{Location: "a", Start: t0.Add(time.Minute), Width: time.Minute, Tree: tr},
	}
	if err := db.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	got := db.Rows()
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	// One sort over the whole batch: start-then-location order.
	want := [][2]string{{"a", t0.String()}, {"a", t0.Add(time.Minute).String()}, {"b", t0.Add(time.Minute).String()}}
	for i, r := range got {
		if r.Location != want[i][0] || r.Start.String() != want[i][1] {
			t.Errorf("row %d = %s@%v", i, r.Location, r.Start)
		}
	}
	if err := db.InsertBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	if db.Len() != 3 {
		t.Errorf("empty batch changed the index: %d rows", db.Len())
	}
}

func TestInsertBatchAtomicValidation(t *testing.T) {
	db := New()
	tr := tree(t, 1)
	rows := []Row{
		{Location: "ok", Start: t0, Width: time.Minute, Tree: tr},
		{Location: "", Start: t0, Width: time.Minute, Tree: tr}, // invalid
	}
	if err := db.InsertBatch(rows); err == nil {
		t.Fatal("invalid row must reject the batch")
	}
	if db.Len() != 0 {
		t.Errorf("rejected batch indexed %d rows", db.Len())
	}
}

// TestMemoKeyAllocs pins the key builder's allocation profile: pre-sorted
// locations build the key in the Builder's single pre-sized allocation;
// unsorted locations pay one extra copy for the sort. Regressing either
// shape puts allocations back on every memoized Select.
func TestMemoKeyAllocs(t *testing.T) {
	from, to := t0, t0.Add(time.Hour)
	sorted := []string{"ams", "fra", "lhr", "nyc"}
	if got := testing.AllocsPerRun(100, func() {
		_, _ = memoKey(sorted, from, to)
	}); got > 1 {
		t.Errorf("memoKey(sorted) allocates %.0f times per call, want <= 1", got)
	}
	unsorted := []string{"nyc", "ams", "fra", "lhr"}
	if got := testing.AllocsPerRun(100, func() {
		_, _ = memoKey(unsorted, from, to)
	}); got > 2 {
		t.Errorf("memoKey(unsorted) allocates %.0f times per call, want <= 2", got)
	}
	// The two shapes must produce the same key (the cache must not split).
	ks, _ := memoKey(sorted, from, to)
	ku, _ := memoKey(unsorted, from, to)
	if ks != ku {
		t.Error("sorted and unsorted location sets produced different keys")
	}
}
