package flowdb

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

// buildBenchDB fills a DB with rows epochs of width one minute, spread
// round-robin across locations. The handful of distinct trees is shared
// across rows (stored trees are immutable), so index size — the quantity
// Select's search cost depends on — scales without the memory of a hundred
// thousand distinct trees.
func buildBenchDB(b *testing.B, rows, locations int, opts ...Option) (*DB, []Row) {
	b.Helper()
	trees := make([]*flowtree.Tree, 16)
	for i := range trees {
		tr, err := flowtree.New(0)
		if err != nil {
			b.Fatal(err)
		}
		tr.Add(flow.Record{
			Key:     flow.Exact(flow.ProtoTCP, flow.IPv4(0x0A000000+i), 0xC0A80105, uint16(40000+i), 443),
			Packets: 1, Bytes: uint64(100 + i),
		})
		trees[i] = tr
	}
	all := make([]Row, rows)
	for i := range all {
		all[i] = Row{
			Location: fmt.Sprintf("site%02d", i%locations),
			Start:    t0.Add(time.Duration(i/locations) * time.Minute),
			Width:    time.Minute,
			Tree:     trees[i%len(trees)],
		}
	}
	db := New(opts...)
	const batch = 4096
	for lo := 0; lo < len(all); lo += batch {
		hi := min(lo+batch, len(all))
		if err := db.InsertBatch(all[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	return db, all
}

// BenchmarkFlowDBSelect measures the indexed selection grid the PR targets:
// rows × locations × window, cold (memoization off — every query pays the
// binary search plus merge) and warm (memoization on, same window repeated
// — every query after the first is a cache hit). The flat/<...> variants
// run the seed's full-scan serial merge over the same row set as the
// baseline the speedup targets are measured against.
func BenchmarkFlowDBSelect(b *testing.B) {
	for _, cfg := range []struct {
		rows, locations, windowEpochs int
	}{
		{10000, 4, 1},
		{100000, 4, 1},
		{100000, 16, 1},
		{100000, 4, 64},
	} {
		name := fmt.Sprintf("rows=%d/locs=%d/window=%d", cfg.rows, cfg.locations, cfg.windowEpochs)
		from := t0.Add(time.Duration(cfg.rows/cfg.locations/2) * time.Minute)
		to := from.Add(time.Duration(cfg.windowEpochs) * time.Minute)
		b.Run("cold/"+name, func(b *testing.B) {
			db, _ := buildBenchDB(b, cfg.rows, cfg.locations, WithCacheEntries(0))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Select(nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("warm/"+name, func(b *testing.B) {
			db, _ := buildBenchDB(b, cfg.rows, cfg.locations)
			if _, _, err := db.Select(nil, from, to); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Select(nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("flat/"+name, func(b *testing.B) {
			_, rows := buildBenchDB(b, cfg.rows, cfg.locations)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := flatSelect(rows, nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFlowDBInsertBatch measures the writer: epoch-ordered batches
// appended to a large segmented index (the seed re-sorted the whole index
// per batch).
func BenchmarkFlowDBInsertBatch(b *testing.B) {
	const locations = 8
	tr, err := flowtree.New(0)
	if err != nil {
		b.Fatal(err)
	}
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoTCP, 1, 2, 3, 4), Packets: 1, Bytes: 1})
	db, _ := buildBenchDB(b, 100000, locations)
	base := t0.Add(365 * 24 * time.Hour) // after every preloaded epoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]Row, locations)
		for j := range batch {
			batch[j] = Row{
				Location: fmt.Sprintf("site%02d", j),
				Start:    base.Add(time.Duration(i) * time.Minute),
				Width:    time.Minute,
				Tree:     tr,
			}
		}
		if err := db.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
