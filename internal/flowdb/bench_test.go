package flowdb

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

// buildBenchDB fills a DB with rows epochs of width one minute, spread
// round-robin across locations. The handful of distinct trees is shared
// across rows (stored trees are immutable), so index size — the quantity
// Select's search cost depends on — scales without the memory of a hundred
// thousand distinct trees.
func buildBenchDB(b *testing.B, rows, locations int, opts ...Option) (*DB, []Row) {
	b.Helper()
	trees := make([]*flowtree.Tree, 16)
	for i := range trees {
		tr, err := flowtree.New(0)
		if err != nil {
			b.Fatal(err)
		}
		tr.Add(flow.Record{
			Key:     flow.Exact(flow.ProtoTCP, flow.IPv4(0x0A000000+i), 0xC0A80105, uint16(40000+i), 443),
			Packets: 1, Bytes: uint64(100 + i),
		})
		trees[i] = tr
	}
	all := make([]Row, rows)
	for i := range all {
		all[i] = Row{
			Location: fmt.Sprintf("site%02d", i%locations),
			Start:    t0.Add(time.Duration(i/locations) * time.Minute),
			Width:    time.Minute,
			Tree:     trees[i%len(trees)],
		}
	}
	db := New(opts...)
	const batch = 4096
	for lo := 0; lo < len(all); lo += batch {
		hi := min(lo+batch, len(all))
		if err := db.InsertBatch(all[lo:hi]); err != nil {
			b.Fatal(err)
		}
	}
	return db, all
}

// BenchmarkFlowDBSelect measures the indexed selection grid the PR targets:
// rows × locations × window, cold (memoization off — every query pays the
// binary search plus merge) and warm (memoization on, same window repeated
// — every query after the first is a cache hit). The flat/<...> variants
// run the seed's full-scan serial merge over the same row set as the
// baseline the speedup targets are measured against.
func BenchmarkFlowDBSelect(b *testing.B) {
	for _, cfg := range []struct {
		rows, locations, windowEpochs int
	}{
		{10000, 4, 1},
		{100000, 4, 1},
		{100000, 16, 1},
		{100000, 4, 64},
	} {
		name := fmt.Sprintf("rows=%d/locs=%d/window=%d", cfg.rows, cfg.locations, cfg.windowEpochs)
		from := t0.Add(time.Duration(cfg.rows/cfg.locations/2) * time.Minute)
		to := from.Add(time.Duration(cfg.windowEpochs) * time.Minute)
		b.Run("cold/"+name, func(b *testing.B) {
			db, _ := buildBenchDB(b, cfg.rows, cfg.locations, WithCacheEntries(0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Select(nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("warm/"+name, func(b *testing.B) {
			db, _ := buildBenchDB(b, cfg.rows, cfg.locations)
			if _, _, err := db.Select(nil, from, to); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := db.Select(nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("flat/"+name, func(b *testing.B) {
			_, rows := buildBenchDB(b, cfg.rows, cfg.locations)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := flatSelect(rows, nil, from, to); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSubscribe measures the standing-query maintenance path the PR
// targets: 8 views over a 100k-row index, each epoch landing one row per
// location. incremental folds the delta into every overlapping view (one
// MergeAll per view per batch) and reads the maintained results; poll
// answers the same 8 dashboard reads with cold Selects (memoization off),
// re-merging the full per-location history every epoch — the baseline the
// >=10x subscribe gate in cmd/benchreport measures against.
func BenchmarkSubscribe(b *testing.B) {
	const locations = 8
	const rows = 100000
	tr, err := flowtree.New(0)
	if err != nil {
		b.Fatal(err)
	}
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoTCP, 1, 2, 3, 4), Packets: 1, Bytes: 1})
	base := t0.Add(365 * 24 * time.Hour) // after every preloaded epoch
	batchAt := func(i int) []Row {
		batch := make([]Row, locations)
		for j := range batch {
			batch[j] = Row{
				Location: fmt.Sprintf("site%02d", j),
				Start:    base.Add(time.Duration(i) * time.Minute),
				Width:    time.Minute,
				Tree:     tr,
			}
		}
		return batch
	}
	b.Run("incremental", func(b *testing.B) {
		db, _ := buildBenchDB(b, rows, locations)
		views := make([]*View, locations)
		for j := range views {
			v, err := db.Subscribe(ViewQuery{Locations: []string{fmt.Sprintf("site%02d", j)}})
			if err != nil {
				b.Fatal(err)
			}
			views[j] = v
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.InsertBatch(batchAt(i)); err != nil {
				b.Fatal(err)
			}
			for _, v := range views {
				if _, _, err := v.Result(); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("poll", func(b *testing.B) {
		db, _ := buildBenchDB(b, rows, locations, WithCacheEntries(0))
		end := base.Add(1 << 40) // open upper bound past every epoch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := db.InsertBatch(batchAt(i)); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < locations; j++ {
				if _, _, err := db.Select([]string{fmt.Sprintf("site%02d", j)}, time.Time{}, end); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkMemoKey measures the memo-cache key builder — on the hot path
// of every memoized Select — in its two shapes: pre-sorted locations (the
// common case, a single pre-sized build pass) and unsorted (pays one copy
// plus sort).
func BenchmarkMemoKey(b *testing.B) {
	from, to := t0, t0.Add(time.Hour)
	b.Run("sorted", func(b *testing.B) {
		locs := []string{"ams", "fra", "lhr", "nyc"}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k, ok := memoKey(locs, from, to); !ok || k == "" {
				b.Fatal("bad key")
			}
		}
	})
	b.Run("unsorted", func(b *testing.B) {
		locs := []string{"nyc", "fra", "ams", "lhr"}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if k, ok := memoKey(locs, from, to); !ok || k == "" {
				b.Fatal("bad key")
			}
		}
	})
}

// BenchmarkFlowDBInsertBatch measures the writer: epoch-ordered batches
// appended to a large segmented index (the seed re-sorted the whole index
// per batch).
func BenchmarkFlowDBInsertBatch(b *testing.B) {
	const locations = 8
	tr, err := flowtree.New(0)
	if err != nil {
		b.Fatal(err)
	}
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoTCP, 1, 2, 3, 4), Packets: 1, Bytes: 1})
	db, _ := buildBenchDB(b, 100000, locations)
	base := t0.Add(365 * 24 * time.Hour) // after every preloaded epoch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([]Row, locations)
		for j := range batch {
			batch[j] = Row{
				Location: fmt.Sprintf("site%02d", j),
				Start:    base.Add(time.Duration(i) * time.Minute),
				Width:    time.Minute,
				Tree:     tr,
			}
		}
		if err := db.InsertBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
}
