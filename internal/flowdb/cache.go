package flowdb

import (
	"container/list"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"megadata/internal/flowtree"
)

// memoCache memoizes merged Select results keyed by (locations, window).
// Entries are stamped with the DB generation their match snapshot was taken
// at; InsertBatch and Evict bump the generation, so every stale entry fails
// the stamp check and is dropped on its next lookup — a hit can never serve
// a tree that predates a write. Bounded LRU over entry count (merged
// dashboard windows are small; the rows backing them stay indexed anyway).
//
// The in-repo prior art is federation.ResultCache, which memoizes shipped
// sub-query results the same way; this cache sits below it, on the FlowDB
// merge itself.
type memoCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

// memoEntry is one cached merge. The tree is owned by the cache and never
// mutated; Select hands out clones.
type memoEntry struct {
	key     string
	gen     uint64
	tree    *flowtree.Tree
	matches int
}

func newMemoCache(capEntries int) *memoCache {
	return &memoCache{
		cap:     capEntries,
		order:   list.New(),
		entries: make(map[string]*list.Element, capEntries),
	}
}

// get returns the cached merge for key if it was computed at generation
// gen; a stamp mismatch evicts the dead entry. The returned tree is the
// cache's own — callers must clone, not mutate. (Cloning outside the cache
// lock is safe: cached trees are never mutated, only dropped, so a
// concurrent eviction cannot invalidate the read.)
//
// A failed lookup is not counted here: misses count cold merges actually
// run, so the flight leader records the one miss its coalesced group
// shares (see DB.selectCold).
func (c *memoCache) get(key string, gen uint64) (*flowtree.Tree, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, 0, false
	}
	ent := el.Value.(*memoEntry)
	if ent.gen != gen {
		c.order.Remove(el)
		delete(c.entries, key)
		return nil, 0, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return ent.tree, ent.matches, true
}

// miss records one cold merge.
func (c *memoCache) miss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// put stores a merge computed at generation gen, evicting the least
// recently used entries beyond the capacity.
func (c *memoCache) put(key string, gen uint64, tree *flowtree.Tree, matches int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
	for c.order.Len() >= c.cap && c.order.Len() > 0 {
		back := c.order.Back()
		delete(c.entries, back.Value.(*memoEntry).key)
		c.order.Remove(back)
	}
	c.entries[key] = c.order.PushFront(&memoEntry{key: key, gen: gen, tree: tree, matches: matches})
}

// snapshot reports hit/miss counts and the live entry count.
func (c *memoCache) snapshot() (hits, misses, entries uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, uint64(len(c.entries))
}

// memoKey canonicalizes a Select argument triple into a cache key: the
// location filter is sorted and deduplicated, so permutations of the same
// filter share an entry. Every location is length-prefixed, so arbitrary
// location names (separators included) can never make two distinct filters
// collide on one key. All Select shapes are memoizable; the bool is a hook
// for future non-memoizable selections.
//
// The key is built in a single pre-sized strings.Builder pass: timestamps
// format into stack scratch, an exact byte count is summed first, and an
// already-sorted filter (every repeated dashboard query after the first)
// skips the copy-and-sort — one allocation per key, the string itself.
func memoKey(locations []string, from, to time.Time) (string, bool) {
	var fscratch, tscratch [14]byte // int64 in base 36: ≤13 digits + sign
	fb := strconv.AppendInt(fscratch[:0], from.UnixNano(), 36)
	tb := strconv.AppendInt(tscratch[:0], to.UnixNano(), 36)
	locs := locations
	if len(locs) > 1 && !sort.StringsAreSorted(locs) {
		cp := make([]string, len(locs))
		copy(cp, locs)
		sort.Strings(cp)
		locs = cp
	}
	size := len(fb) + 1 + len(tb)
	for i, l := range locs {
		if i > 0 && locs[i-1] == l {
			continue
		}
		size += 2 + decDigits(len(l)) + len(l)
	}
	var b strings.Builder
	b.Grow(size)
	b.Write(fb)
	b.WriteByte('|')
	b.Write(tb)
	var lscratch [20]byte
	for i, l := range locs {
		if i > 0 && locs[i-1] == l {
			continue
		}
		b.WriteByte('|')
		b.Write(strconv.AppendInt(lscratch[:0], int64(len(l)), 10))
		b.WriteByte(':')
		b.WriteString(l)
	}
	return b.String(), true
}

// decDigits is the decimal width of a non-negative int.
func decDigits(n int) int {
	d := 1
	for n >= 10 {
		n /= 10
		d++
	}
	return d
}
