package flowdb

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

// TestSelectSingleFlight is the acceptance gate for coalescing: 32
// concurrent identical cold Selects perform exactly one merge — the memo
// cache records one miss, 31 callers ride the in-flight merge — and all
// 32 results are byte-equal yet independently owned clones.
func TestSelectSingleFlight(t *testing.T) {
	db := New()
	for i := 0; i < 64; i++ {
		err := db.Insert(Row{
			Location: "fra",
			Start:    t0.Add(time.Duration(i) * time.Minute),
			Width:    time.Minute,
			Tree:     tree(t, uint64(i+1)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	const callers = 32
	// The gate parks the one flight leader until the other 31 callers
	// have joined the flight (each increments Coalesced before blocking),
	// making "32 concurrent Selects, one merge" deterministic rather than
	// scheduler-dependent.
	db.mergeGate = func() {
		for db.coalesced.Load() < callers-1 {
			runtime.Gosched()
		}
	}
	results := make([]*flowtree.Tree, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, n, err := db.Select([]string{"fra"}, t0, t0.Add(64*time.Minute))
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			if n != 64 {
				t.Errorf("caller %d: matched %d, want 64", i, n)
			}
			results[i] = tr
		}(i)
	}
	wg.Wait()
	db.mergeGate = nil
	st := db.CacheStats()
	if st.Misses != 1 {
		t.Errorf("misses=%d, want exactly 1 merge for %d concurrent Selects", st.Misses, callers)
	}
	if st.Coalesced != callers-1 {
		t.Errorf("coalesced=%d, want %d", st.Coalesced, callers-1)
	}
	if st.Hits != 0 {
		t.Errorf("hits=%d, want 0 (all callers were cold)", st.Hits)
	}
	want := results[0].AppendBinary(nil)
	for i, tr := range results {
		if tr == nil {
			t.Fatalf("caller %d got no result", i)
		}
		if got := tr.AppendBinary(nil); !bytes.Equal(got, want) {
			t.Errorf("caller %d result differs: %d vs %d wire bytes", i, len(got), len(want))
		}
	}
	// Clones are caller-owned: mutating one result must not leak into any
	// other, nor into the entry the flight left in the memo cache.
	results[1].Add(flow.Record{Key: flow.Exact(flow.ProtoUDP, 1, 2, 3, 4), Packets: 1, Bytes: 999})
	if got := results[2].AppendBinary(nil); !bytes.Equal(got, want) {
		t.Error("mutating one waiter's result corrupted another's")
	}
	cached, _, err := db.Select([]string{"fra"}, t0, t0.Add(64*time.Minute)) // memo hit
	if err != nil {
		t.Fatal(err)
	}
	if got := cached.AppendBinary(nil); !bytes.Equal(got, want) {
		t.Error("mutating a waiter's result corrupted the cached merge")
	}
	if st := db.CacheStats(); st.Hits != 1 || st.Entries != 1 {
		t.Errorf("post-flight stats %+v, want 1 hit / 1 entry", st)
	}
}

// TestSingleFlightGenerationIsolation pins that a Select racing a write
// never joins a merge taken against the older snapshot: the flight key
// carries the generation, so the post-write caller runs its own merge
// and sees the new row while the stale flight is still parked.
func TestSingleFlightGenerationIsolation(t *testing.T) {
	db := New()
	if err := db.Insert(Row{Location: "fra", Start: t0, Width: time.Hour, Tree: tree(t, 100)}); err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	parked := make(chan struct{})
	var gateOnce sync.Once
	db.mergeGate = func() {
		blocked := false
		gateOnce.Do(func() { blocked = true })
		if blocked {
			close(parked)
			<-release
		}
	}
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		tr, _, err := db.Select(nil, t0, t0.Add(2*time.Hour))
		if err != nil {
			t.Error(err)
			return
		}
		// The parked leader matches when it finally merges — after the
		// write — so it returns the fresher answer (never a stale one).
		if tr.Total().Bytes != 105 {
			t.Errorf("parked flight saw %d bytes, want 105", tr.Total().Bytes)
		}
	}()
	<-parked
	if err := db.Insert(Row{Location: "fra", Start: t0.Add(time.Hour), Width: time.Hour, Tree: tree(t, 5)}); err != nil {
		t.Fatal(err)
	}
	// Same arguments, new generation: must not coalesce onto the parked
	// flight, and must observe the write.
	tr, n, err := db.Select(nil, t0, t0.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tr.Total().Bytes != 105 {
		t.Fatalf("post-write Select: n=%d bytes=%d, want 2 rows / 105 bytes", n, tr.Total().Bytes)
	}
	if st := db.CacheStats(); st.Coalesced != 0 {
		t.Errorf("post-write Select coalesced onto a stale flight (coalesced=%d)", st.Coalesced)
	}
	close(release)
	<-staleDone
	db.mergeGate = nil
}

// TestSingleFlightSequentialStillCounts pins that the flight layer is
// invisible to sequential callers: each cold Select is its own leader
// and its own miss, exactly as before.
func TestSingleFlightSequentialStillCounts(t *testing.T) {
	db := New()
	if err := db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := db.Select(nil, t0, t0.Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if err := db.Insert(Row{Location: "a", Start: t0.Add(time.Duration(i+1) * time.Hour), Width: time.Hour, Tree: tree(t, 1)}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.CacheStats()
	if st.Misses != 3 || st.Coalesced != 0 {
		t.Errorf("stats %+v, want 3 misses / 0 coalesced", st)
	}
}
