package flowdb

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

// flatSelect is the reference implementation the segmented index must match
// exactly: a full scan of every row with the overlap predicate, followed by
// a serial clone-and-merge in scan order — the seed's FlowDB.
func flatSelect(rows []Row, locations []string, from, to time.Time) (*flowtree.Tree, int, error) {
	want := map[string]bool{}
	for _, l := range locations {
		want[l] = true
	}
	var matches []Row
	for _, r := range rows {
		if len(want) > 0 && !want[r.Location] {
			continue
		}
		if r.End().After(from) && r.Start.Before(to) {
			matches = append(matches, r)
		}
	}
	if len(matches) == 0 {
		return nil, 0, ErrNoData
	}
	merged := matches[0].Tree.Clone()
	for _, r := range matches[1:] {
		if err := merged.Merge(r.Tree); err != nil {
			return nil, 0, err
		}
	}
	return merged, len(matches), nil
}

// randomRows builds a random unbudgeted row set: random locations, starts,
// widths (including rows much wider than the typical epoch, to exercise the
// lower-bound back-off) and small random trees.
func randomRows(t *testing.T, rng *rand.Rand, n int) []Row {
	t.Helper()
	locs := []string{"ams", "fra", "lhr", "nyc", "sfo", "syd"}
	rows := make([]Row, n)
	for i := range rows {
		tr, err := flowtree.New(0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 1+rng.Intn(3); k++ {
			tr.Add(flow.Record{
				Key: flow.Exact(flow.ProtoTCP,
					flow.IPv4(rng.Intn(1<<16))<<16|flow.IPv4(rng.Intn(1<<16)),
					0xC0A80000|flow.IPv4(rng.Intn(256)),
					uint16(1024+rng.Intn(60000)), 443),
				Packets: 1 + uint64(rng.Intn(100)),
				Bytes:   1 + uint64(rng.Intn(100000)),
			})
		}
		width := time.Duration(1+rng.Intn(10)) * time.Minute
		if rng.Intn(10) == 0 {
			width = time.Duration(1+rng.Intn(12)) * time.Hour // wide straddler
		}
		rows[i] = Row{
			Location: locs[rng.Intn(len(locs))],
			Start:    t0.Add(time.Duration(rng.Intn(14*24)) * time.Minute),
			Width:    width,
			Tree:     tr,
		}
	}
	return rows
}

// sameTree asserts two unbudgeted trees carry identical weight at identical
// keys (Entries is keyLess-sorted, so equality is positional).
func sameTree(t *testing.T, got, want *flowtree.Tree) {
	t.Helper()
	if got.Total() != want.Total() {
		t.Fatalf("totals differ: %+v vs %+v", got.Total(), want.Total())
	}
	ge, we := got.Entries(), want.Entries()
	if len(ge) != len(we) {
		t.Fatalf("entry counts differ: %d vs %d", len(ge), len(we))
	}
	for i := range ge {
		if ge[i] != we[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ge[i], we[i])
		}
	}
}

// TestSelectEquivalentToFlatScan is the acceptance property: for random row
// sets, random windows and random location filters, the segmented parallel
// Select returns exactly the flat-scan merge — same match count, same keys,
// same counters (trees are unbudgeted, so the merge is exact and order-
// independent).
func TestSelectEquivalentToFlatScan(t *testing.T) {
	locs := []string{"ams", "fra", "lhr", "nyc", "sfo", "syd"}
	for _, seed := range []int64{1, 2, 3, 4} {
		rng := rand.New(rand.NewSource(seed))
		rows := randomRows(t, rng, 300)
		// Exercise both the serial and the parallel merge reduction, with
		// memoization on (hits must be equivalent too, checked by querying
		// every window twice).
		for _, workers := range []int{1, 4} {
			db := New(WithMergeWorkers(workers))
			// Insert in random batches, some out of epoch order.
			for lo := 0; lo < len(rows); {
				hi := lo + 1 + rng.Intn(40)
				if hi > len(rows) {
					hi = len(rows)
				}
				if err := db.InsertBatch(rows[lo:hi]); err != nil {
					t.Fatal(err)
				}
				lo = hi
			}
			for q := 0; q < 40; q++ {
				from := t0.Add(time.Duration(rng.Intn(15*24)-12) * time.Minute)
				to := from.Add(time.Duration(rng.Intn(36*60)) * time.Minute)
				var filter []string
				for _, l := range locs {
					if rng.Intn(3) == 0 {
						filter = append(filter, l)
					}
				}
				want, wantN, wantErr := flatSelect(rows, filter, from, to)
				for rep := 0; rep < 2; rep++ { // rep 1 = memoized path
					got, gotN, gotErr := db.Select(filter, from, to)
					if wantErr != nil {
						if !errors.Is(gotErr, ErrNoData) {
							t.Fatalf("seed %d query %d: err=%v, want ErrNoData", seed, q, gotErr)
						}
						continue
					}
					if gotErr != nil {
						t.Fatalf("seed %d query %d: %v", seed, q, gotErr)
					}
					if gotN != wantN {
						t.Fatalf("seed %d query %d rep %d: matched %d, want %d", seed, q, rep, gotN, wantN)
					}
					sameTree(t, got, want)
				}
			}
		}
	}
}

// TestSelectAfterEvictEquivalentToFlatScan re-runs the equivalence after
// evictions so the compacted segments (and eviction's cache invalidation)
// answer from the surviving rows only.
func TestSelectAfterEvictEquivalentToFlatScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := randomRows(t, rng, 300)
	db := New()
	if err := db.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	cutoff := t0.Add(5 * 24 * time.Hour)
	var surviving []Row
	for _, r := range rows {
		if !r.End().Before(cutoff) {
			surviving = append(surviving, r)
		}
	}
	if n := db.Evict(cutoff); n != len(rows)-len(surviving) {
		t.Fatalf("Evict dropped %d, want %d", n, len(rows)-len(surviving))
	}
	for q := 0; q < 30; q++ {
		from := t0.Add(time.Duration(rng.Intn(15*24)) * time.Minute)
		to := from.Add(time.Duration(rng.Intn(36*60)) * time.Minute)
		want, wantN, wantErr := flatSelect(surviving, nil, from, to)
		got, gotN, gotErr := db.Select(nil, from, to)
		if wantErr != nil {
			if !errors.Is(gotErr, ErrNoData) {
				t.Fatalf("query %d: err=%v, want ErrNoData", q, gotErr)
			}
			continue
		}
		if gotErr != nil || gotN != wantN {
			t.Fatalf("query %d: n=%d err=%v, want n=%d", q, gotN, gotErr, wantN)
		}
		sameTree(t, got, want)
	}
}

// TestCacheNeverServesStale is the cache invalidation property: a Select
// issued after an InsertBatch or Evict completes must reflect that write —
// memoized merges from before the write can never be served.
func TestCacheNeverServesStale(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := New()
	var shadow []Row
	windows := []struct{ from, to time.Time }{
		{t0, t0.Add(time.Hour)},
		{t0.Add(30 * time.Minute), t0.Add(90 * time.Minute)},
		{t0, t0.Add(24 * time.Hour)},
	}
	for step := 0; step < 60; step++ {
		switch rng.Intn(4) {
		case 0: // insert a batch overlapping the query windows
			batch := randomRows(t, rng, 1+rng.Intn(5))
			for i := range batch {
				batch[i].Start = t0.Add(time.Duration(rng.Intn(120)) * time.Minute)
			}
			if err := db.InsertBatch(batch); err != nil {
				t.Fatal(err)
			}
			shadow = append(shadow, batch...)
		case 1: // evict a prefix
			cutoff := t0.Add(time.Duration(rng.Intn(60)) * time.Minute)
			db.Evict(cutoff)
			kept := shadow[:0]
			for _, r := range shadow {
				if !r.End().Before(cutoff) {
					kept = append(kept, r)
				}
			}
			shadow = kept
		default: // query a hot window (these repeat, driving the memo cache)
			w := windows[rng.Intn(len(windows))]
			want, wantN, wantErr := flatSelect(shadow, nil, w.from, w.to)
			got, gotN, gotErr := db.Select(nil, w.from, w.to)
			if wantErr != nil {
				if !errors.Is(gotErr, ErrNoData) {
					t.Fatalf("step %d: err=%v, want ErrNoData", step, gotErr)
				}
				continue
			}
			if gotErr != nil || gotN != wantN {
				t.Fatalf("step %d: n=%d err=%v, want n=%d", step, gotN, gotErr, wantN)
			}
			sameTree(t, got, want)
		}
	}
	if st := db.CacheStats(); st.Hits == 0 || st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("property test never exercised the cache: %+v", st)
	}
}

// TestMemoizedSelectIsOwned pins that a cache hit hands out an independent
// clone: mutating the returned tree must not corrupt later hits.
func TestMemoizedSelectIsOwned(t *testing.T) {
	db := New()
	if err := db.Insert(Row{Location: "a", Start: t0, Width: time.Hour, Tree: tree(t, 100)}); err != nil {
		t.Fatal(err)
	}
	first, _, err := db.Select(nil, t0, t0.Add(time.Hour)) // miss, populates cache
	if err != nil {
		t.Fatal(err)
	}
	second, _, err := db.Select(nil, t0, t0.Add(time.Hour)) // hit
	if err != nil {
		t.Fatal(err)
	}
	second.Add(flow.Record{Key: flow.Exact(flow.ProtoUDP, 1, 2, 3, 4), Packets: 1, Bytes: 999})
	third, _, err := db.Select(nil, t0, t0.Add(time.Hour)) // hit again
	if err != nil {
		t.Fatal(err)
	}
	if first.Total().Bytes != 100 || third.Total().Bytes != 100 {
		t.Errorf("cache hit leaked a mutable reference: first=%d third=%d",
			first.Total().Bytes, third.Total().Bytes)
	}
	if st := db.CacheStats(); st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats %+v, want 2 hits / 1 miss / 1 entry", st)
	}
}
