package flowdb

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"megadata/internal/flowtree"
)

// ErrViewClosed is returned by View methods after Close.
var ErrViewClosed = errors.New("flowdb: view is closed")

// openEnd is the exclusive upper bound stored for an open-ended view
// window: far enough in the future that every row's start precedes it,
// so open views need no special casing anywhere in the match logic.
var openEnd = time.Unix(1<<62, 0)

// ViewQuery describes a standing selection — the same (locations, window)
// shape Select takes, registered once and maintained across writes.
//
// Locations nil or empty matches all locations. A zero To (with Window
// zero) leaves the window open-ended: the view keeps growing as epochs
// land. Window > 0 instead maintains a trailing window of that width
// anchored to the latest row end the DB has seen — the window slides
// forward as new epochs land, and From/To are ignored.
type ViewQuery struct {
	Locations []string
	From, To  time.Time
	Window    time.Duration
}

// ViewOption configures a registered view.
type ViewOption func(*View)

// WithViewBudget compresses the maintained tree to a node budget after
// every recompute and delta merge (0, the default, keeps the view exact —
// the only mode in which view contents equal a fresh Select bit-for-bit,
// since budget compression is arrival-order dependent).
func WithViewBudget(n int) ViewOption {
	return func(v *View) {
		if n > 0 {
			v.budget = n
		}
	}
}

// WithViewUpdateHook installs a callback fired after any write that
// changed (or invalidated) the view's contents. The hook runs on the
// writer's goroutine — InsertBatch and Evict do not return until every
// subscribed hook has — with no view lock held, so it may call Result,
// Inspect or Close. A blocking hook backpressures the epoch writer.
// Hooks are per-subscriber: subscriptions deduplicated onto a shared
// core each still get their own callback.
func WithViewUpdateHook(fn func(*View)) ViewOption {
	return func(v *View) { v.onUpdate = fn }
}

// viewCore is the maintenance unit behind one or more Views: the
// materialized tree, its window and generation stamp, and the delta-merge
// state. Identical subscriptions — same canonical (locations, window,
// budget) key, the same canonicalization the Select memo cache uses —
// share one core, so N identical dashboards cost one MergeAll per epoch
// instead of N. The core lives until its last View handle closes.
type viewCore struct {
	db        *DB
	id        int64
	key       string          // canonical dedup key
	locations []string        // canonical: sorted, deduplicated; nil = all
	locSet    map[string]bool // nil = all
	window    time.Duration   // > 0: trailing window width
	budget    int             // > 0: compress maintained tree to this

	// refs/handles are guarded by db.viewMu (the registry lock), not c.mu:
	// notify snapshots handles there so hooks run without any view lock.
	refs    int
	handles map[int64]*View

	mu         sync.Mutex
	from, to   time.Time // current window [from, to); to == openEnd when open
	tree       *flowtree.Tree
	matches    int
	minEnd     time.Time // earliest end among merged rows; zero when none
	gen        uint64    // DB generation the contents reflect
	dirty      bool      // contents stale; next read recomputes via the index
	version    uint64
	recomputes uint64
	closed     bool
}

// View is one subscriber's handle on a standing query's materialized
// result: a tree maintained incrementally as the DB is written.
// InsertBatch merges only the delta rows matching the view's (locations,
// window) — one MergeAll (one aggregate rebuild, one budget compression)
// per view core per batch, O(delta) instead of O(window re-merge). Writes
// that invalidate the incremental state (a window slide or eviction that
// drops merged rows, or writes racing each other) mark the view dirty;
// the next read rebuilds it through the per-location segment index — the
// same binary-searched match Select uses, never a flat re-scan.
//
// Identical subscriptions share one maintenance core (see Shared); every
// read hands back caller-owned data (Result clones), so sharing is
// invisible except in cost.
type View struct {
	c  *viewCore
	id int64

	// budget/onUpdate are populated by ViewOptions before the core is
	// resolved; budget participates in the dedup key, onUpdate stays on
	// the handle.
	budget   int
	onUpdate func(*View)

	mu     sync.Mutex
	closed bool
}

// viewKey canonicalizes a view spec for dedup, reusing the memo cache's
// (locations, window) canonicalization: fixed windows key on their
// bounds, trailing windows on their width (their bounds slide with the
// shared data clock, so two trailing views of the same width converge on
// identical content), and the budget is appended since it changes the
// maintained tree.
func viewKey(locations []string, from, to time.Time, window time.Duration, budget int) string {
	var base string
	if window > 0 {
		base, _ = memoKey(locations, time.Unix(0, 0), time.Unix(0, int64(window)))
		base = "w|" + base
	} else {
		base, _ = memoKey(locations, from, to)
	}
	if budget > 0 {
		base += "|b" + strconv.Itoa(budget)
	}
	return base
}

// Subscribe registers a standing query and returns its materialized view.
// The view starts dirty and is built through the segment index on the
// first read (Subscribe itself triggers one), then maintained
// incrementally by every subsequent InsertBatch/Evict until Close.
//
// Subscriptions with an identical canonical spec — same location set,
// same window (bounds for fixed windows, width for trailing ones), same
// budget — deduplicate onto one refcounted shared core: the per-epoch
// delta merge runs once, every subscriber's hook still fires, and every
// Result is still a private clone. Close detaches one subscriber; the
// core is torn down when the last one leaves.
func (db *DB) Subscribe(q ViewQuery, opts ...ViewOption) (*View, error) {
	if q.Window < 0 {
		return nil, fmt.Errorf("%w: negative trailing window", ErrBadView)
	}
	var from, to time.Time
	if q.Window == 0 {
		from = q.From
		to = q.To
		if to.IsZero() {
			to = openEnd
		}
		if !to.After(from) {
			return nil, fmt.Errorf("%w: empty window [%v,%v)", ErrBadView, q.From, q.To)
		}
	}
	var locations []string
	var locSet map[string]bool
	if len(q.Locations) > 0 {
		locs := make([]string, len(q.Locations))
		copy(locs, q.Locations)
		sort.Strings(locs)
		locSet = make(map[string]bool, len(locs))
		locations = locs[:0]
		for _, l := range locs {
			if !locSet[l] {
				locSet[l] = true
				locations = append(locations, l)
			}
		}
	}
	v := &View{}
	for _, opt := range opts {
		opt(v)
	}
	key := viewKey(locations, from, to, q.Window, v.budget)

	db.viewMu.Lock()
	if c, ok := db.viewIndex[key]; ok {
		// Identical standing query already maintained: attach to it.
		db.nextView++
		v.id = db.nextView
		v.c = c
		c.refs++
		c.handles[v.id] = v
		db.viewMu.Unlock()
		return v, nil
	}
	c := &viewCore{
		db:        db,
		key:       key,
		locations: locations,
		locSet:    locSet,
		window:    q.Window,
		budget:    v.budget,
		dirty:     true,
		from:      from,
		to:        to,
	}
	if q.Window > 0 {
		// Anchor the trailing window to the latest data end; an empty DB
		// leaves it empty until the first batch slides it into place.
		if _, end, ok := db.TimeBounds(); ok {
			c.to = end
			c.from = end.Add(-q.Window)
		}
	}
	// Register before the initial build: a write landing in between either
	// beats the recompute's snapshot (the generation stamp skips its
	// delta) or applies on top of it. Registration order never loses rows.
	db.nextView++
	v.id = db.nextView
	c.id = v.id
	c.refs = 1
	c.handles = map[int64]*View{v.id: v}
	v.c = c
	db.views[c.id] = c
	db.viewIndex[key] = c
	db.viewMu.Unlock()

	c.mu.Lock()
	err := c.recomputeLocked()
	c.mu.Unlock()
	if err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// ErrBadView rejects invalid standing queries.
var ErrBadView = errors.New("flowdb: invalid view query")

// Views reports how many standing view cores are registered. Identical
// subscriptions share a core, so N duplicate dashboards count once here
// (Shared reports the fan-out).
func (db *DB) Views() int {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	return len(db.views)
}

// snapshotViews copies the registered view-core set so write-side
// maintenance iterates without holding the registry lock.
func (db *DB) snapshotViews() []*viewCore {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	if len(db.views) == 0 {
		return nil
	}
	out := make([]*viewCore, 0, len(db.views))
	for _, c := range db.views {
		out = append(out, c)
	}
	return out
}

// Shared reports how many subscribers currently ride this view's core
// (1 = unshared).
func (v *View) Shared() int {
	v.c.db.viewMu.Lock()
	defer v.c.db.viewMu.Unlock()
	return v.c.refs
}

// Close detaches this subscriber. The shared core (and its maintenance
// cost) survives until the last subscriber closes; then it unregisters,
// subsequent reads return ErrViewClosed and writes no longer maintain it.
// Idempotent per handle.
func (v *View) Close() {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	v.closed = true
	v.mu.Unlock()
	c := v.c
	db := c.db
	db.viewMu.Lock()
	delete(c.handles, v.id)
	c.refs--
	last := c.refs == 0
	if last {
		delete(db.views, c.id)
		if db.viewIndex[c.key] == c {
			delete(db.viewIndex, c.key)
		}
	}
	db.viewMu.Unlock()
	if last {
		c.mu.Lock()
		c.closed = true
		c.tree = nil
		c.mu.Unlock()
	}
}

// Window returns the view's current window. Open-ended views report a
// far-future end; trailing views report the current slid position.
func (v *View) Window() (from, to time.Time) {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.from, c.to
}

// Matches reports how many stored rows the view currently covers.
func (v *View) Matches() int {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.matches
}

// Version counts content-changing updates — a cheap way for pollers to
// skip unchanged views.
func (v *View) Version() uint64 {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// Recomputes counts full index-backed rebuilds. A view on a growing
// window stays at 1 (the initial build) no matter how many epochs land —
// the incremental guarantee the subscribe benchmark measures.
func (v *View) Recomputes() uint64 {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.recomputes
}

// ViewSnapshot is the metadata handed to Inspect alongside the tree.
type ViewSnapshot struct {
	Matches  int
	From, To time.Time
	Version  uint64
}

// Result returns a caller-owned clone of the maintained tree and the
// number of rows it covers, rebuilding first if the view is dirty.
// Mirrors Select: an empty view returns ErrNoData. The clone is private
// even when the core is shared between subscribers.
func (v *View) Result() (*flowtree.Tree, int, error) {
	v.mu.Lock()
	closed := v.closed
	v.mu.Unlock()
	if closed {
		return nil, 0, ErrViewClosed
	}
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, ErrViewClosed
	}
	if c.dirty {
		if err := c.recomputeLocked(); err != nil {
			return nil, 0, err
		}
	}
	if c.tree == nil {
		return nil, 0, fmt.Errorf("%w: view locations=%v window=[%v,%v)", ErrNoData, c.locations, c.from, c.to)
	}
	return c.tree.Clone(), c.matches, nil
}

// Inspect runs fn against the maintained tree without cloning it,
// rebuilding first if the view is dirty. The tree (nil when the view is
// empty — not an error, unlike Result) is only valid inside fn and must
// not be retained or mutated; fn runs under the view lock, so it must not
// call other View methods — and with a shared core it briefly blocks the
// other subscribers' reads.
func (v *View) Inspect(fn func(tree *flowtree.Tree, snap ViewSnapshot)) error {
	v.mu.Lock()
	closed := v.closed
	v.mu.Unlock()
	if closed {
		return ErrViewClosed
	}
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrViewClosed
	}
	if c.dirty {
		if err := c.recomputeLocked(); err != nil {
			return err
		}
	}
	fn(c.tree, ViewSnapshot{Matches: c.matches, From: c.from, To: c.to, Version: c.version})
	return nil
}

// recomputeLocked rebuilds the view through the segment index: the same
// binary-searched per-location match Select uses, merged with the same
// parallel reduction. Callers hold c.mu.
func (c *viewCore) recomputeLocked() error {
	trees, minEnd, gen := c.db.matchView(c.locations, c.from, c.to)
	c.recomputes++
	c.gen = gen
	c.dirty = false
	c.minEnd = minEnd
	c.matches = len(trees)
	c.version++
	if len(trees) == 0 {
		c.tree = nil
		return nil
	}
	merged, err := c.db.mergeMatches(trees)
	if err != nil {
		c.dirty = true
		return err
	}
	if c.budget > 0 {
		if err := merged.SetBudget(c.budget); err != nil {
			c.dirty = true
			return err
		}
	}
	c.tree = merged
	return nil
}

// matchView is match plus the earliest matched row end — the quantity the
// slide and evict fast paths compare against the cut.
func (db *DB) matchView(locations []string, from, to time.Time) ([]*flowtree.Tree, time.Time, uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*flowtree.Tree
	var minEnd time.Time
	if len(locations) == 0 {
		for _, loc := range db.locs {
			out, minEnd = db.segs[loc].overlap(out, minEnd, from, to)
		}
		return out, minEnd, db.gen
	}
	for _, loc := range locations { // canonical: already deduplicated
		if seg, ok := db.segs[loc]; ok {
			out, minEnd = seg.overlap(out, minEnd, from, to)
		}
	}
	return out, minEnd, db.gen
}

// applyInsert folds one committed batch into the view core. gen is the DB
// generation the batch produced and maxEnd the latest end across the
// whole batch (the data clock trailing windows slide on). The generation
// stamp makes delta application exact under concurrent writers: a delta
// merges only when the view reflects exactly the previous generation;
// a view a recompute has already carried past this write skips it, and
// an out-of-order delivery falls back to dirty instead of double- or
// under-counting.
func (c *viewCore) applyInsert(batch []Row, maxEnd time.Time, gen uint64) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.dirty {
		// Already pending a rebuild; the next recompute sees this batch
		// in the index. Still an update the subscriber should hear about.
		c.mu.Unlock()
		c.notify()
		return
	}
	if c.gen >= gen {
		c.mu.Unlock()
		return
	}
	if c.gen != gen-1 {
		c.dirty = true
		c.mu.Unlock()
		c.notify()
		return
	}
	c.gen = gen
	changed := false
	if c.window > 0 && maxEnd.After(c.to) {
		// Slide the trailing window to the new data clock. Merged rows
		// whose end falls at or before the new start leave the window —
		// merge is not invertible, so the view re-merges through the
		// segment index (dirty); a slide that drops nothing stays O(delta).
		c.to = maxEnd
		if newFrom := maxEnd.Add(-c.window); newFrom.After(c.from) {
			c.from = newFrom
			if c.tree != nil && !c.minEnd.After(newFrom) {
				c.dirty = true
				changed = true
			}
		}
	}
	if !c.dirty {
		var add []*flowtree.Tree
		for i := range batch {
			r := &batch[i]
			if c.locSet != nil && !c.locSet[r.Location] {
				continue
			}
			end := r.End()
			if !end.After(c.from) || !r.Start.Before(c.to) {
				continue
			}
			add = append(add, r.Tree)
			if c.minEnd.IsZero() || end.Before(c.minEnd) {
				c.minEnd = end
			}
		}
		if len(add) > 0 {
			var err error
			if c.tree == nil {
				c.tree = add[0].Clone()
				if c.budget > 0 {
					err = c.tree.SetBudget(c.budget)
				}
				if err == nil && len(add) > 1 {
					err = c.tree.MergeAll(add[1:]...)
				}
			} else {
				err = c.tree.MergeAll(add...)
			}
			if err != nil {
				c.dirty = true // surfaced by the next read's rebuild
			} else {
				c.matches += len(add)
			}
			changed = true
		}
	}
	if changed {
		c.version++
	}
	c.mu.Unlock()
	if changed {
		c.notify()
	}
}

// applyEvict advances the view core past a committed eviction. Only views
// actually overlapping the cut — their earliest merged row end precedes
// the cutoff — go dirty; everything else just advances its generation
// stamp, untouched.
func (c *viewCore) applyEvict(cutoff time.Time, gen uint64) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	if c.dirty {
		c.mu.Unlock()
		c.notify()
		return
	}
	if c.gen >= gen {
		c.mu.Unlock()
		return
	}
	if c.gen != gen-1 {
		c.dirty = true
		c.mu.Unlock()
		c.notify()
		return
	}
	c.gen = gen
	if c.tree != nil && c.minEnd.Before(cutoff) {
		c.dirty = true
		c.version++
		c.mu.Unlock()
		c.notify()
		return
	}
	c.mu.Unlock()
}

// notify fires every attached subscriber's update hook outside the view
// lock, in subscriber registration order (deterministic under sharing).
func (c *viewCore) notify() {
	c.db.viewMu.Lock()
	hs := make([]*View, 0, len(c.handles))
	for _, h := range c.handles {
		hs = append(hs, h)
	}
	c.db.viewMu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	for _, h := range hs {
		if h.onUpdate == nil {
			continue
		}
		h.mu.Lock()
		closed := h.closed
		h.mu.Unlock()
		if !closed {
			h.onUpdate(h)
		}
	}
}
