package flowdb

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"megadata/internal/flowtree"
)

// ErrViewClosed is returned by View methods after Close.
var ErrViewClosed = errors.New("flowdb: view is closed")

// openEnd is the exclusive upper bound stored for an open-ended view
// window: far enough in the future that every row's start precedes it,
// so open views need no special casing anywhere in the match logic.
var openEnd = time.Unix(1<<62, 0)

// ViewQuery describes a standing selection — the same (locations, window)
// shape Select takes, registered once and maintained across writes.
//
// Locations nil or empty matches all locations. A zero To (with Window
// zero) leaves the window open-ended: the view keeps growing as epochs
// land. Window > 0 instead maintains a trailing window of that width
// anchored to the latest row end the DB has seen — the window slides
// forward as new epochs land, and From/To are ignored.
type ViewQuery struct {
	Locations []string
	From, To  time.Time
	Window    time.Duration
}

// ViewOption configures a registered view.
type ViewOption func(*View)

// WithViewBudget compresses the maintained tree to a node budget after
// every recompute and delta merge (0, the default, keeps the view exact —
// the only mode in which view contents equal a fresh Select bit-for-bit,
// since budget compression is arrival-order dependent).
func WithViewBudget(n int) ViewOption {
	return func(v *View) {
		if n > 0 {
			v.budget = n
		}
	}
}

// WithViewUpdateHook installs a callback fired after any write that
// changed (or invalidated) the view's contents. The hook runs on the
// writer's goroutine — InsertBatch and Evict do not return until every
// subscribed hook has — with no view lock held, so it may call Result,
// Inspect or Close. A blocking hook backpressures the epoch writer.
func WithViewUpdateHook(fn func(*View)) ViewOption {
	return func(v *View) { v.onUpdate = fn }
}

// View is a standing query's materialized result: a tree maintained
// incrementally as the DB is written. InsertBatch merges only the delta
// rows matching the view's (locations, window) — one MergeAll (one
// aggregate rebuild, one budget compression) per view per batch, O(delta)
// instead of O(window re-merge). Writes that invalidate the incremental
// state (a window slide or eviction that drops merged rows, or writes
// racing each other) mark the view dirty; the next read rebuilds it
// through the per-location segment index — the same binary-searched
// match Select uses, never a flat re-scan.
type View struct {
	db        *DB
	id        int64
	locations []string        // canonical: sorted, deduplicated; nil = all
	locSet    map[string]bool // nil = all
	window    time.Duration   // > 0: trailing window width
	budget    int             // > 0: compress maintained tree to this
	onUpdate  func(*View)

	mu         sync.Mutex
	from, to   time.Time // current window [from, to); to == openEnd when open
	tree       *flowtree.Tree
	matches    int
	minEnd     time.Time // earliest end among merged rows; zero when none
	gen        uint64    // DB generation the contents reflect
	dirty      bool      // contents stale; next read recomputes via the index
	version    uint64
	recomputes uint64
	closed     bool
}

// Subscribe registers a standing query and returns its materialized view.
// The view starts dirty and is built through the segment index on the
// first read (Subscribe itself triggers one), then maintained
// incrementally by every subsequent InsertBatch/Evict until Close.
func (db *DB) Subscribe(q ViewQuery, opts ...ViewOption) (*View, error) {
	if q.Window < 0 {
		return nil, fmt.Errorf("%w: negative trailing window", ErrBadView)
	}
	v := &View{db: db, window: q.Window, dirty: true}
	if q.Window > 0 {
		// Anchor the trailing window to the latest data end; an empty DB
		// leaves it empty until the first batch slides it into place.
		if _, to, ok := db.TimeBounds(); ok {
			v.to = to
			v.from = to.Add(-q.Window)
		}
	} else {
		v.from = q.From
		v.to = q.To
		if v.to.IsZero() {
			v.to = openEnd
		}
		if !v.to.After(v.from) {
			return nil, fmt.Errorf("%w: empty window [%v,%v)", ErrBadView, q.From, q.To)
		}
	}
	if len(q.Locations) > 0 {
		locs := make([]string, len(q.Locations))
		copy(locs, q.Locations)
		sort.Strings(locs)
		v.locSet = make(map[string]bool, len(locs))
		v.locations = locs[:0]
		for _, l := range locs {
			if !v.locSet[l] {
				v.locSet[l] = true
				v.locations = append(v.locations, l)
			}
		}
	}
	for _, opt := range opts {
		opt(v)
	}
	// Register before the initial build: a write landing in between either
	// beats the recompute's snapshot (the generation stamp skips its
	// delta) or applies on top of it. Registration order never loses rows.
	db.viewMu.Lock()
	db.nextView++
	v.id = db.nextView
	db.views[v.id] = v
	db.viewMu.Unlock()
	v.mu.Lock()
	err := v.recomputeLocked()
	v.mu.Unlock()
	if err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// ErrBadView rejects invalid standing queries.
var ErrBadView = errors.New("flowdb: invalid view query")

// Views reports how many standing views are registered.
func (db *DB) Views() int {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	return len(db.views)
}

// snapshotViews copies the registered view set so write-side maintenance
// iterates without holding the registry lock.
func (db *DB) snapshotViews() []*View {
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	if len(db.views) == 0 {
		return nil
	}
	out := make([]*View, 0, len(db.views))
	for _, v := range db.views {
		out = append(out, v)
	}
	return out
}

// Close unregisters the view; subsequent reads return ErrViewClosed and
// writes no longer maintain it.
func (v *View) Close() {
	v.db.viewMu.Lock()
	delete(v.db.views, v.id)
	v.db.viewMu.Unlock()
	v.mu.Lock()
	v.closed = true
	v.tree = nil
	v.mu.Unlock()
}

// Window returns the view's current window. Open-ended views report a
// far-future end; trailing views report the current slid position.
func (v *View) Window() (from, to time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.from, v.to
}

// Matches reports how many stored rows the view currently covers.
func (v *View) Matches() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.matches
}

// Version counts content-changing updates — a cheap way for pollers to
// skip unchanged views.
func (v *View) Version() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.version
}

// Recomputes counts full index-backed rebuilds. A view on a growing
// window stays at 1 (the initial build) no matter how many epochs land —
// the incremental guarantee the subscribe benchmark measures.
func (v *View) Recomputes() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.recomputes
}

// ViewSnapshot is the metadata handed to Inspect alongside the tree.
type ViewSnapshot struct {
	Matches  int
	From, To time.Time
	Version  uint64
}

// Result returns a caller-owned clone of the maintained tree and the
// number of rows it covers, rebuilding first if the view is dirty.
// Mirrors Select: an empty view returns ErrNoData.
func (v *View) Result() (*flowtree.Tree, int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil, 0, ErrViewClosed
	}
	if v.dirty {
		if err := v.recomputeLocked(); err != nil {
			return nil, 0, err
		}
	}
	if v.tree == nil {
		return nil, 0, fmt.Errorf("%w: view locations=%v window=[%v,%v)", ErrNoData, v.locations, v.from, v.to)
	}
	return v.tree.Clone(), v.matches, nil
}

// Inspect runs fn against the maintained tree without cloning it,
// rebuilding first if the view is dirty. The tree (nil when the view is
// empty — not an error, unlike Result) is only valid inside fn and must
// not be retained or mutated; fn runs under the view lock, so it must not
// call other View methods.
func (v *View) Inspect(fn func(tree *flowtree.Tree, snap ViewSnapshot)) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return ErrViewClosed
	}
	if v.dirty {
		if err := v.recomputeLocked(); err != nil {
			return err
		}
	}
	fn(v.tree, ViewSnapshot{Matches: v.matches, From: v.from, To: v.to, Version: v.version})
	return nil
}

// recomputeLocked rebuilds the view through the segment index: the same
// binary-searched per-location match Select uses, merged with the same
// parallel reduction. Callers hold v.mu.
func (v *View) recomputeLocked() error {
	trees, minEnd, gen := v.db.matchView(v.locations, v.from, v.to)
	v.recomputes++
	v.gen = gen
	v.dirty = false
	v.minEnd = minEnd
	v.matches = len(trees)
	v.version++
	if len(trees) == 0 {
		v.tree = nil
		return nil
	}
	merged, err := v.db.mergeMatches(trees)
	if err != nil {
		v.dirty = true
		return err
	}
	if v.budget > 0 {
		if err := merged.SetBudget(v.budget); err != nil {
			v.dirty = true
			return err
		}
	}
	v.tree = merged
	return nil
}

// matchView is match plus the earliest matched row end — the quantity the
// slide and evict fast paths compare against the cut.
func (db *DB) matchView(locations []string, from, to time.Time) ([]*flowtree.Tree, time.Time, uint64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*flowtree.Tree
	var minEnd time.Time
	if len(locations) == 0 {
		for _, loc := range db.locs {
			out, minEnd = db.segs[loc].overlap(out, minEnd, from, to)
		}
		return out, minEnd, db.gen
	}
	for _, loc := range locations { // canonical: already deduplicated
		if seg, ok := db.segs[loc]; ok {
			out, minEnd = seg.overlap(out, minEnd, from, to)
		}
	}
	return out, minEnd, db.gen
}

// applyInsert folds one committed batch into the view. gen is the DB
// generation the batch produced and maxEnd the latest end across the
// whole batch (the data clock trailing windows slide on). The generation
// stamp makes delta application exact under concurrent writers: a delta
// merges only when the view reflects exactly the previous generation;
// a view a recompute has already carried past this write skips it, and
// an out-of-order delivery falls back to dirty instead of double- or
// under-counting.
func (v *View) applyInsert(batch []Row, maxEnd time.Time, gen uint64) {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	if v.dirty {
		// Already pending a rebuild; the next recompute sees this batch
		// in the index. Still an update the subscriber should hear about.
		v.mu.Unlock()
		v.notify()
		return
	}
	if v.gen >= gen {
		v.mu.Unlock()
		return
	}
	if v.gen != gen-1 {
		v.dirty = true
		v.mu.Unlock()
		v.notify()
		return
	}
	v.gen = gen
	changed := false
	if v.window > 0 && maxEnd.After(v.to) {
		// Slide the trailing window to the new data clock. Merged rows
		// whose end falls at or before the new start leave the window —
		// merge is not invertible, so the view re-merges through the
		// segment index (dirty); a slide that drops nothing stays O(delta).
		v.to = maxEnd
		if newFrom := maxEnd.Add(-v.window); newFrom.After(v.from) {
			v.from = newFrom
			if v.tree != nil && !v.minEnd.After(newFrom) {
				v.dirty = true
				changed = true
			}
		}
	}
	if !v.dirty {
		var add []*flowtree.Tree
		for i := range batch {
			r := &batch[i]
			if v.locSet != nil && !v.locSet[r.Location] {
				continue
			}
			end := r.End()
			if !end.After(v.from) || !r.Start.Before(v.to) {
				continue
			}
			add = append(add, r.Tree)
			if v.minEnd.IsZero() || end.Before(v.minEnd) {
				v.minEnd = end
			}
		}
		if len(add) > 0 {
			var err error
			if v.tree == nil {
				v.tree = add[0].Clone()
				if v.budget > 0 {
					err = v.tree.SetBudget(v.budget)
				}
				if err == nil && len(add) > 1 {
					err = v.tree.MergeAll(add[1:]...)
				}
			} else {
				err = v.tree.MergeAll(add...)
			}
			if err != nil {
				v.dirty = true // surfaced by the next read's rebuild
			} else {
				v.matches += len(add)
			}
			changed = true
		}
	}
	if changed {
		v.version++
	}
	v.mu.Unlock()
	if changed {
		v.notify()
	}
}

// applyEvict advances the view past a committed eviction. Only views
// actually overlapping the cut — their earliest merged row end precedes
// the cutoff — go dirty; everything else just advances its generation
// stamp, untouched.
func (v *View) applyEvict(cutoff time.Time, gen uint64) {
	v.mu.Lock()
	if v.closed {
		v.mu.Unlock()
		return
	}
	if v.dirty {
		v.mu.Unlock()
		v.notify()
		return
	}
	if v.gen >= gen {
		v.mu.Unlock()
		return
	}
	if v.gen != gen-1 {
		v.dirty = true
		v.mu.Unlock()
		v.notify()
		return
	}
	v.gen = gen
	if v.tree != nil && v.minEnd.Before(cutoff) {
		v.dirty = true
		v.version++
		v.mu.Unlock()
		v.notify()
		return
	}
	v.mu.Unlock()
}

// notify fires the update hook outside the view lock.
func (v *View) notify() {
	if v.onUpdate != nil {
		v.onUpdate(v)
	}
}
