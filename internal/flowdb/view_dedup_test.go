package flowdb

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestViewDedupSharesCore pins the dedup contract: N identical
// subscriptions ride one maintenance core (one per-epoch delta merge),
// every subscriber still gets its own update hook and its own cloned
// Result, and closing detaches subscribers one at a time.
func TestViewDedupSharesCore(t *testing.T) {
	db := New()
	const n = 5
	var fired [n]atomic.Uint64
	views := make([]*View, n)
	for i := 0; i < n; i++ {
		i := i
		v, err := db.Subscribe(
			ViewQuery{Locations: []string{"nyc", "fra"}, Window: 6 * time.Hour},
			WithViewUpdateHook(func(*View) { fired[i].Add(1) }),
		)
		if err != nil {
			t.Fatal(err)
		}
		views[i] = v
	}
	if got := db.Views(); got != 1 {
		t.Fatalf("Views()=%d after %d identical subscribes, want 1 shared core", got, n)
	}
	for i, v := range views {
		if got := v.Shared(); got != n {
			t.Fatalf("views[%d].Shared()=%d, want %d", i, got, n)
		}
	}
	// A different spec must NOT share.
	other, err := db.Subscribe(ViewQuery{Locations: []string{"nyc"}, Window: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if got := db.Views(); got != 2 {
		t.Fatalf("Views()=%d after a distinct subscribe, want 2", got)
	}
	if got := other.Shared(); got != 1 {
		t.Fatalf("distinct view Shared()=%d, want 1", got)
	}

	rng := rand.New(rand.NewSource(7))
	if err := db.InsertBatch(randomRows(t, rng, 12)); err != nil {
		t.Fatal(err)
	}
	for i := range fired {
		if fired[i].Load() == 0 {
			t.Fatalf("subscriber %d's hook never fired on a shared core", i)
		}
	}
	// Results are private clones: mutating one subscriber's result must
	// not leak into another's.
	r0, _, err0 := views[0].Result()
	r1, _, err1 := views[1].Result()
	if err0 != nil || err1 != nil {
		t.Fatalf("Result: %v / %v", err0, err1)
	}
	if r0 == r1 {
		t.Fatal("shared view handed the same tree to two subscribers")
	}
	sameTree(t, r0, r1)

	views[0].Close()
	views[0].Close() // idempotent per handle
	if got := views[1].Shared(); got != n-1 {
		t.Fatalf("Shared()=%d after one Close, want %d", got, n-1)
	}
	if got := db.Views(); got != 2 {
		t.Fatalf("Views()=%d after one of %d subscribers closed, want 2", got, n)
	}
	if _, _, err := views[0].Result(); !errors.Is(err, ErrViewClosed) {
		t.Fatalf("closed handle Result err=%v, want ErrViewClosed", err)
	}
	if _, _, err := views[1].Result(); err != nil {
		t.Fatalf("surviving subscriber's Result failed after sibling Close: %v", err)
	}
	for _, v := range views[1:] {
		v.Close()
	}
	if got := db.Views(); got != 1 {
		t.Fatalf("Views()=%d after all shared subscribers closed, want 1 (the distinct view)", got)
	}
}

// TestViewDedupEqualsSelect is the satellite's acceptance property:
// deduplicated shared views, driven through randomized inserts, evicts
// and window slides, stay exactly equal to a fresh Select of the same
// query — sharing changes the cost, never the answer.
func TestViewDedupEqualsSelect(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		rng := rand.New(rand.NewSource(seed))
		db := New()
		specs := []ViewQuery{
			{},                                  // open, all locations
			{Locations: []string{"fra", "nyc"}}, // open, filtered
			{Window: 6 * time.Hour},             // trailing
			{From: t0.Add(time.Hour), To: t0.Add(2 * 24 * time.Hour)},
		}
		var views []*View
		for _, q := range specs {
			for dup := 0; dup < 3; dup++ { // three subscribers per spec
				v, err := db.Subscribe(q)
				if err != nil {
					t.Fatal(err)
				}
				views = append(views, v)
			}
		}
		if got := db.Views(); got != len(specs) {
			t.Fatalf("Views()=%d, want %d cores for %d subscriptions", got, len(specs), len(views))
		}
		for step := 0; step < 40; step++ {
			switch rng.Intn(5) {
			case 0, 1, 2:
				if err := db.InsertBatch(randomRows(t, rng, 1+rng.Intn(8))); err != nil {
					t.Fatal(err)
				}
			case 3:
				db.Evict(t0.Add(time.Duration(rng.Intn(10*24)) * time.Hour))
			default: // churn one subscriber off and back onto a shared core
				i := rng.Intn(len(views))
				views[i].Close()
				v, err := db.Subscribe(specs[i/3])
				if err != nil {
					t.Fatal(err)
				}
				views[i] = v
			}
			for _, v := range views {
				checkViewAgainstSelect(t, db, v)
			}
		}
	}
}
