package hierarchy

import (
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Levels: []string{"one"}}); err == nil {
		t.Error("one level must error")
	}
	if _, err := New(Config{Levels: []string{"a", "b"}, Fanout: []int{1, 2}}); err == nil {
		t.Error("fanout length mismatch must error")
	}
	if _, err := New(Config{Levels: []string{"a", "b"}, Fanout: []int{0}}); err == nil {
		t.Error("zero fanout must error")
	}
}

func TestFactoryTopologyShape(t *testing.T) {
	h, err := NewFactory(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaves := h.Leaves()
	if len(leaves) != 12 {
		t.Fatalf("leaves = %d, want 12", len(leaves))
	}
	for _, l := range leaves {
		if l.Level != "machine" {
			t.Errorf("leaf level = %s", l.Level)
		}
		// machine -> line -> factory -> cloud
		depth := 0
		for n := l; n.Parent != nil; n = n.Parent {
			depth++
		}
		if depth != 3 {
			t.Errorf("leaf depth = %d", depth)
		}
	}
	if h.Root.Level != "cloud" {
		t.Errorf("root level = %s", h.Root.Level)
	}
	if _, ok := h.Node(leaves[0].Site); !ok {
		t.Error("Node lookup failed")
	}
	if _, ok := h.Node("ghost"); ok {
		t.Error("ghost site found")
	}
}

func TestNetworkMonitoringTopology(t *testing.T) {
	h, err := NewNetworkMonitoring(3, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Leaves()); got != 24 {
		t.Errorf("routers = %d, want 24", got)
	}
	if h.Leaves()[0].Level != "router" {
		t.Errorf("leaf level = %s", h.Leaves()[0].Level)
	}
}

func TestRollupMergesAllTraffic(t *testing.T) {
	h, err := NewNetworkMonitoring(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want flow.Counters
	for i, leaf := range h.Leaves() {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Sources: 256, Destinations: 64})
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(500)
		for _, r := range recs {
			want.Add(flow.CountersOf(r))
		}
		if err := h.IngestAtLeaf(leaf, recs); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := h.Rollup()
	if err != nil {
		t.Fatal(err)
	}
	root, err := h.RootTree()
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Total(); got != want {
		t.Errorf("root total = %+v, want %+v", got, want)
	}
	// Report covers router, region, network levels (leaves first).
	if len(levels) != 3 || levels[0].Level != "router" || levels[2].Level != "network" {
		t.Errorf("levels = %+v", levels)
	}
	if levels[0].Nodes != 4 || levels[1].Nodes != 2 || levels[2].Nodes != 1 {
		t.Errorf("node counts = %+v", levels)
	}
	// The network metered every export.
	var exported uint64
	for _, l := range levels {
		exported += l.Bytes
	}
	if got := h.Net.TotalStats().Bytes; got != exported {
		t.Errorf("metered %d bytes, report says %d", got, exported)
	}
}

func TestRollupBudgetReducesEgress(t *testing.T) {
	// E10 shape: with a node budget, upper levels export far fewer bytes
	// than the sum of raw leaf exports.
	budgeted, err := NewNetworkMonitoring(2, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, leaf := range budgeted.Leaves() {
		g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2})
		if err := budgeted.IngestAtLeaf(leaf, g.Records(3000)); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := budgeted.Rollup()
	if err != nil {
		t.Fatal(err)
	}
	// Each level's per-node egress must stay bounded by the budget
	// (~40 bytes per tree node).
	for _, l := range levels {
		perNode := l.Bytes / uint64(l.Nodes)
		if perNode > 512*64 {
			t.Errorf("level %s exports %d bytes/node (budget 512 nodes)", l.Level, perNode)
		}
	}
	// Region level (fan-in 4) must not export 4x the router level's
	// per-node bytes: compression caps it.
	routerPer := levels[0].Bytes / uint64(levels[0].Nodes)
	regionPer := levels[1].Bytes / uint64(levels[1].Nodes)
	if regionPer > 2*routerPer {
		t.Errorf("region per-node egress %d not compressed vs router %d", regionPer, routerPer)
	}
}

func TestClockShared(t *testing.T) {
	h, err := NewFactory(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := h.Clock.Now()
	h.Clock.Advance(time.Minute)
	if !h.Clock.Now().Equal(start.Add(time.Minute)) {
		t.Error("clock did not advance")
	}
	// Data stores observe the same clock.
	leaf := h.Leaves()[0]
	if err := leaf.Store.Seal(AggregatorName); err != nil {
		t.Fatal(err)
	}
	st, err := leaf.Store.StatsOf(AggregatorName)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredEpochs != 1 {
		t.Errorf("stored epochs = %d", st.StoredEpochs)
	}
	_ = simnet.SiteID("") // keep import
}
