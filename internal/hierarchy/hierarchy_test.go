package hierarchy

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Levels: []string{"one"}}); err == nil {
		t.Error("one level must error")
	}
	if _, err := New(Config{Levels: []string{"a", "b"}, Fanout: []int{1, 2}}); err == nil {
		t.Error("fanout length mismatch must error")
	}
	if _, err := New(Config{Levels: []string{"a", "b"}, Fanout: []int{0}}); err == nil {
		t.Error("zero fanout must error")
	}
}

func TestFactoryTopologyShape(t *testing.T) {
	h, err := NewFactory(3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaves := h.Leaves()
	if len(leaves) != 12 {
		t.Fatalf("leaves = %d, want 12", len(leaves))
	}
	for _, l := range leaves {
		if l.Level != "machine" {
			t.Errorf("leaf level = %s", l.Level)
		}
		// machine -> line -> factory -> cloud
		depth := 0
		for n := l; n.Parent != nil; n = n.Parent {
			depth++
		}
		if depth != 3 {
			t.Errorf("leaf depth = %d", depth)
		}
	}
	if h.Root.Level != "cloud" {
		t.Errorf("root level = %s", h.Root.Level)
	}
	if _, ok := h.Node(leaves[0].Site); !ok {
		t.Error("Node lookup failed")
	}
	if _, ok := h.Node("ghost"); ok {
		t.Error("ghost site found")
	}
}

func TestNetworkMonitoringTopology(t *testing.T) {
	h, err := NewNetworkMonitoring(3, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(h.Leaves()); got != 24 {
		t.Errorf("routers = %d, want 24", got)
	}
	if h.Leaves()[0].Level != "router" {
		t.Errorf("leaf level = %s", h.Leaves()[0].Level)
	}
}

func TestRollupMergesAllTraffic(t *testing.T) {
	h, err := NewNetworkMonitoring(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want flow.Counters
	for i, leaf := range h.Leaves() {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Sources: 256, Destinations: 64})
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(500)
		for _, r := range recs {
			want.Add(flow.CountersOf(r))
		}
		if err := h.IngestAtLeaf(leaf, recs); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := h.Rollup()
	if err != nil {
		t.Fatal(err)
	}
	root, err := h.RootTree()
	if err != nil {
		t.Fatal(err)
	}
	if got := root.Total(); got != want {
		t.Errorf("root total = %+v, want %+v", got, want)
	}
	// Report covers router, region, network levels (leaves first).
	if len(levels) != 3 || levels[0].Level != "router" || levels[2].Level != "network" {
		t.Errorf("levels = %+v", levels)
	}
	if levels[0].Nodes != 4 || levels[1].Nodes != 2 || levels[2].Nodes != 1 {
		t.Errorf("node counts = %+v", levels)
	}
	// The network metered every export.
	var exported uint64
	for _, l := range levels {
		exported += l.Bytes
	}
	if got := h.Net.TotalStats().Bytes; got != exported {
		t.Errorf("metered %d bytes, report says %d", got, exported)
	}
}

func TestRollupBudgetReducesEgress(t *testing.T) {
	// E10 shape: with a node budget, upper levels export far fewer bytes
	// than the sum of raw leaf exports.
	budgeted, err := NewNetworkMonitoring(2, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, leaf := range budgeted.Leaves() {
		g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2})
		if err := budgeted.IngestAtLeaf(leaf, g.Records(3000)); err != nil {
			t.Fatal(err)
		}
	}
	levels, err := budgeted.Rollup()
	if err != nil {
		t.Fatal(err)
	}
	// Each level's per-node egress must stay bounded by the budget
	// (~40 bytes per tree node).
	for _, l := range levels {
		perNode := l.Bytes / uint64(l.Nodes)
		if perNode > 512*64 {
			t.Errorf("level %s exports %d bytes/node (budget 512 nodes)", l.Level, perNode)
		}
	}
	// Region level (fan-in 4) must not export 4x the router level's
	// per-node bytes: compression caps it.
	routerPer := levels[0].Bytes / uint64(levels[0].Nodes)
	regionPer := levels[1].Bytes / uint64(levels[1].Nodes)
	if regionPer > 2*routerPer {
		t.Errorf("region per-node egress %d not compressed vs router %d", regionPer, routerPer)
	}
}

// TestRollupPartialFailure pins the aggregated-error contract: a node whose
// uplink fails does not abort the pass — its siblings and every upper level
// still export, and the joined error names the failed site.
func TestRollupPartialFailure(t *testing.T) {
	h, err := NewNetworkMonitoring(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaves := h.Leaves()
	var want, lost flow.Counters
	for i, leaf := range leaves {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Sources: 128})
		if err != nil {
			t.Fatal(err)
		}
		recs := g.Records(400)
		for _, r := range recs {
			want.Add(flow.CountersOf(r))
		}
		if i == 0 {
			for _, r := range recs {
				lost.Add(flow.CountersOf(r))
			}
		}
		if err := h.IngestAtLeaf(leaf, recs); err != nil {
			t.Fatal(err)
		}
	}
	// Break leaf 0's uplink: every transfer attempt fails.
	bad := leaves[0]
	if err := h.Net.Connect(bad.Parent.Site, bad.Site, simnet.Link{BytesPerSecond: 1e6, FailEvery: 1}); err != nil {
		t.Fatal(err)
	}
	levels, err := h.Rollup()
	if err == nil {
		t.Fatal("rollup over a dead uplink must report an error")
	}
	if !errors.Is(err, simnet.ErrTransient) {
		t.Errorf("err = %v, want wrapped ErrTransient", err)
	}
	if !strings.Contains(err.Error(), string(bad.Site)) {
		t.Errorf("error %q does not name the failed site %s", err, bad.Site)
	}
	// The rest of the level exported: 3 of 4 routers.
	if len(levels) == 0 || levels[0].Nodes != 3 {
		t.Fatalf("router level exported %+v, want 3 nodes", levels)
	}
	// Upper levels are not stale: both regions and the network shipped, and
	// the root holds everything except the failed leaf's weight.
	if levels[1].Nodes != 2 || levels[2].Nodes != 1 {
		t.Errorf("upper levels = %+v", levels)
	}
	root, err := h.RootTree()
	if err != nil {
		t.Fatal(err)
	}
	want.Sub(lost)
	if got := root.Total(); got != want {
		t.Errorf("root total = %+v, want %+v (all but the failed leaf)", got, want)
	}
}

// TestConcurrentIngestDuringRollup drives ingest into every leaf while a
// multi-level rollup exports — the race the snapshot-based export path must
// survive (run under -race).
func TestConcurrentIngestDuringRollup(t *testing.T) {
	h, err := NewNetworkMonitoring(2, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	leaves := h.Leaves()
	for i, leaf := range leaves {
		g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1)})
		if err := h.IngestAtLeaf(leaf, g.Records(500)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, leaf := range leaves {
		wg.Add(1)
		go func(i int, leaf *Node) {
			defer wg.Done()
			g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: int64(100 + i)})
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := h.IngestAtLeaf(leaf, g.Records(50)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, leaf)
	}
	for pass := 0; pass < 3; pass++ {
		if _, err := h.Rollup(); err != nil {
			t.Errorf("rollup pass %d: %v", pass, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestGraftPrune covers topology churn: grafted nodes join the next rollup,
// pruned subtrees leave it.
func TestGraftPrune(t *testing.T) {
	h, err := NewNetworkMonitoring(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	n, err := h.Graft(h.Root.Children[0].Site, "region2", "region")
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := h.Graft(n.Site, "router0", "router")
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Leaves()) != 5 {
		t.Fatalf("leaves = %d, want 5 after graft", len(h.Leaves()))
	}
	g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: 3})
	recs := g.Records(200)
	var want flow.Counters
	for _, r := range recs {
		want.Add(flow.CountersOf(r))
	}
	if err := h.IngestAtLeaf(leaf, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Rollup(); err != nil {
		t.Fatal(err)
	}
	root, err := h.RootTree()
	if err != nil {
		t.Fatal(err)
	}
	if root.Total() != want {
		t.Errorf("grafted leaf's weight did not reach the root: %+v vs %+v", root.Total(), want)
	}
	// Prune the grafted region: its subtree leaves the topology.
	if err := h.Prune(n.Site); err != nil {
		t.Fatal(err)
	}
	if len(h.Leaves()) != 4 {
		t.Errorf("leaves = %d after prune, want 4", len(h.Leaves()))
	}
	if _, ok := h.Node(leaf.Site); ok {
		t.Error("pruned descendant still resolvable")
	}
	if err := h.Prune("ghost"); err == nil {
		t.Error("pruning an unknown site must error")
	}
	if err := h.Prune(h.Root.Site); err == nil {
		t.Error("pruning the root must error")
	}
	if _, err := h.Graft("ghost", "x", "region"); err == nil {
		t.Error("grafting under an unknown site must error")
	}
	if _, err := h.Graft(h.Root.Site, "dup", "region"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Graft(h.Root.Site, "dup", "region"); err == nil {
		t.Error("grafting a duplicate site must error")
	}
}

func TestClockShared(t *testing.T) {
	h, err := NewFactory(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := h.Clock.Now()
	h.Clock.Advance(time.Minute)
	if !h.Clock.Now().Equal(start.Add(time.Minute)) {
		t.Error("clock did not advance")
	}
	// Data stores observe the same clock.
	leaf := h.Leaves()[0]
	if err := leaf.Store.Seal(AggregatorName); err != nil {
		t.Fatal(err)
	}
	st, err := leaf.Store.StatsOf(AggregatorName)
	if err != nil {
		t.Fatal(err)
	}
	if st.StoredEpochs != 1 {
		t.Errorf("stored epochs = %d", st.StoredEpochs)
	}
	_ = simnet.SiteID("") // keep import
}
