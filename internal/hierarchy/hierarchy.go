// Package hierarchy models the hierarchical settings of Figure 1: a tree
// of sites (machine → production line → factory → cloud, or router →
// region → network → cloud), each hosting a data store with a Flowtree (or
// other) aggregator, connected by a simulated WAN. Rolling summaries up the
// tree — export, transfer, merge, compress — is the paper's core data
// movement (Figure 2b), and the per-level byte reduction is experiment E10.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"megadata/internal/datastore"
	"megadata/internal/flow"
	"megadata/internal/flowtree"
	"megadata/internal/primitive"
	"megadata/internal/simnet"
)

// Node is one site in the hierarchy.
type Node struct {
	Site     simnet.SiteID
	Level    string
	Store    *datastore.Store
	Parent   *Node
	Children []*Node
}

// Hierarchy is a tree of sites over a simulated network.
type Hierarchy struct {
	Root  *Node
	Net   *simnet.Network
	Clock *simnet.Clock
	nodes map[simnet.SiteID]*Node
	// aggName is the Flowtree aggregator registered at every store.
	aggName string
}

// Config parameterizes hierarchy construction.
type Config struct {
	// Levels are the level names from root to leaves, e.g.
	// ["cloud", "factory", "line", "machine"].
	Levels []string
	// Fanout[i] is the number of children each level-i node has
	// (len(Fanout) = len(Levels)-1).
	Fanout []int
	// TreeBudget is the Flowtree node budget at each store.
	TreeBudget int
	// Link is applied to every parent-child connection.
	Link simnet.Link
	// Start initializes the virtual clock.
	Start time.Time
}

// AggregatorName is the Flowtree aggregator each node's store registers.
const AggregatorName = "flows"

// New builds a hierarchy per the config.
func New(cfg Config) (*Hierarchy, error) {
	if len(cfg.Levels) < 2 {
		return nil, errors.New("hierarchy: need at least two levels")
	}
	if len(cfg.Fanout) != len(cfg.Levels)-1 {
		return nil, errors.New("hierarchy: need one fanout per non-leaf level")
	}
	for _, f := range cfg.Fanout {
		if f < 1 {
			return nil, errors.New("hierarchy: fanout must be at least 1")
		}
	}
	if cfg.Link.BytesPerSecond <= 0 {
		cfg.Link = simnet.Link{BytesPerSecond: 10e6, Latency: 10 * time.Millisecond}
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	h := &Hierarchy{
		Net:     simnet.NewNetwork(),
		Clock:   simnet.NewClock(cfg.Start),
		nodes:   make(map[simnet.SiteID]*Node),
		aggName: AggregatorName,
	}
	var build func(level int, path string, parent *Node) (*Node, error)
	build = func(level int, path string, parent *Node) (*Node, error) {
		site := simnet.SiteID(path)
		store := datastore.New(path, h.Clock.Now)
		budget := cfg.TreeBudget
		err := store.Register(datastore.AggregatorConfig{
			Name: h.aggName,
			New: func() (primitive.Aggregator, error) {
				return primitive.NewFlowtree(AggregatorName, budget)
			},
			Strategy:    datastore.StrategyRoundRobin,
			BudgetBytes: 64 << 20,
		})
		if err != nil {
			return nil, err
		}
		if err := store.Subscribe("flows", h.aggName); err != nil {
			return nil, err
		}
		n := &Node{Site: site, Level: cfg.Levels[level], Store: store, Parent: parent}
		h.Net.AddSite(site)
		h.nodes[site] = n
		if parent != nil {
			if err := h.Net.Connect(parent.Site, site, cfg.Link); err != nil {
				return nil, err
			}
		}
		if level < len(cfg.Levels)-1 {
			for i := 0; i < cfg.Fanout[level]; i++ {
				child, err := build(level+1, fmt.Sprintf("%s/%s%d", path, cfg.Levels[level+1], i), n)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, child)
			}
		}
		return n, nil
	}
	root, err := build(0, cfg.Levels[0], nil)
	if err != nil {
		return nil, err
	}
	h.Root = root
	return h, nil
}

// NewFactory builds the Figure 1a topology: cloud → factory → production
// lines → machines.
func NewFactory(lines, machinesPerLine, treeBudget int) (*Hierarchy, error) {
	return New(Config{
		Levels:     []string{"cloud", "factory", "line", "machine"},
		Fanout:     []int{1, lines, machinesPerLine},
		TreeBudget: treeBudget,
	})
}

// NewNetworkMonitoring builds the Figure 1b topology: cloud → network →
// regions → routers.
func NewNetworkMonitoring(regions, routersPerRegion, treeBudget int) (*Hierarchy, error) {
	return New(Config{
		Levels:     []string{"cloud", "network", "region", "router"},
		Fanout:     []int{1, regions, routersPerRegion},
		TreeBudget: treeBudget,
	})
}

// Leaves returns the leaf nodes in deterministic order.
func (h *Hierarchy) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.Root)
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Node returns the node at site.
func (h *Hierarchy) Node(site simnet.SiteID) (*Node, bool) {
	n, ok := h.nodes[site]
	return n, ok
}

// IngestAtLeaf feeds flow records into one leaf's data store.
func (h *Hierarchy) IngestAtLeaf(leaf *Node, recs []flow.Record) error {
	for _, r := range recs {
		if err := leaf.Store.Ingest("flows", r); err != nil {
			return err
		}
	}
	return nil
}

// LevelBytes reports, per level, how many bytes that level exported to its
// parents during a rollup.
type LevelBytes struct {
	Level string
	Bytes uint64
	Nodes int
}

// Rollup exports every node's live Flowtree to its parent, bottom-up:
// serialize, transfer over the WAN (metered), merge into the parent's live
// tree — the paper's "A12 = compress(A1 ∪ A2)" across the hierarchy.
// It returns the per-level export volume, leaves first.
func (h *Hierarchy) Rollup() ([]LevelBytes, error) {
	perLevel := map[string]*LevelBytes{}
	// Process deepest levels first: collect nodes by depth.
	var byDepth [][]*Node
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for len(byDepth) <= depth {
			byDepth = append(byDepth, nil)
		}
		byDepth[depth] = append(byDepth[depth], n)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	for depth := len(byDepth) - 1; depth > 0; depth-- {
		nodes := byDepth[depth]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Site < nodes[j].Site })
		for _, n := range nodes {
			agg, err := n.Store.Live(h.aggName)
			if err != nil {
				return nil, err
			}
			ft, ok := agg.(*primitive.FlowtreeAggregator)
			if !ok {
				return nil, fmt.Errorf("hierarchy: node %s aggregator is %T", n.Site, agg)
			}
			size := ft.Tree().SizeBytes()
			lb := perLevel[n.Level]
			if lb == nil {
				lb = &LevelBytes{Level: n.Level}
				perLevel[n.Level] = lb
			}
			lb.Bytes += size
			lb.Nodes++
			if _, err := h.Net.Transfer(n.Site, n.Parent.Site, size); err != nil {
				return nil, fmt.Errorf("hierarchy: export %s: %w", n.Site, err)
			}
			// MergeLive (rather than mutating a Live reference) keeps
			// the rollup correct even if a node's store is sharded.
			if err := n.Parent.Store.MergeLive(h.aggName, ft); err != nil {
				return nil, fmt.Errorf("hierarchy: merge into %s: %w", n.Parent.Site, err)
			}
		}
	}
	// Leaves first in the report (deepest level first).
	var out []LevelBytes
	for depth := len(byDepth) - 1; depth > 0; depth-- {
		level := byDepth[depth][0].Level
		if lb, ok := perLevel[level]; ok {
			out = append(out, *lb)
			delete(perLevel, level)
		}
	}
	return out, nil
}

// RootTree returns the root's merged live Flowtree.
func (h *Hierarchy) RootTree() (*flowtree.Tree, error) {
	agg, err := h.Root.Store.Live(h.aggName)
	if err != nil {
		return nil, err
	}
	ft, ok := agg.(*primitive.FlowtreeAggregator)
	if !ok {
		return nil, fmt.Errorf("hierarchy: root aggregator is %T", agg)
	}
	return ft.Tree(), nil
}
