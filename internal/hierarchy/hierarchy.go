// Package hierarchy models the hierarchical settings of Figure 1: a tree
// of sites (machine → production line → factory → cloud, or router →
// region → network → cloud), each hosting a data store with a Flowtree (or
// other) aggregator, connected by a simulated WAN. Rolling summaries up the
// tree — export, transfer, merge, compress — is the paper's core data
// movement (Figure 2b), and the per-level byte reduction is experiment E10.
package hierarchy

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"megadata/internal/datastore"
	"megadata/internal/flow"
	"megadata/internal/flowtree"
	"megadata/internal/primitive"
	"megadata/internal/simnet"
)

// Node is one site in the hierarchy.
type Node struct {
	Site     simnet.SiteID
	Level    string
	Store    *datastore.Store
	Parent   *Node
	Children []*Node
}

// Hierarchy is a tree of sites over a simulated network.
type Hierarchy struct {
	Root  *Node
	Net   *simnet.Network
	Clock *simnet.Clock
	nodes map[simnet.SiteID]*Node
	// aggName is the Flowtree aggregator registered at every store.
	aggName string
	// cfg is retained for Graft: grafted nodes get the same store
	// registration, budget and link as construction-time nodes.
	cfg Config
}

// Config parameterizes hierarchy construction.
type Config struct {
	// Levels are the level names from root to leaves, e.g.
	// ["cloud", "factory", "line", "machine"].
	Levels []string
	// Fanout[i] is the number of children each level-i node has
	// (len(Fanout) = len(Levels)-1).
	Fanout []int
	// TreeBudget is the Flowtree node budget at each store.
	TreeBudget int
	// Link is applied to every parent-child connection.
	Link simnet.Link
	// Start initializes the virtual clock.
	Start time.Time
	// ExportWorkers bounds the per-level rollup concurrency (0 = 8): how
	// many nodes of one level serialize, transfer and merge at once.
	ExportWorkers int
}

// AggregatorName is the Flowtree aggregator each node's store registers.
const AggregatorName = "flows"

// New builds a hierarchy per the config.
func New(cfg Config) (*Hierarchy, error) {
	if len(cfg.Levels) < 2 {
		return nil, errors.New("hierarchy: need at least two levels")
	}
	if len(cfg.Fanout) != len(cfg.Levels)-1 {
		return nil, errors.New("hierarchy: need one fanout per non-leaf level")
	}
	for _, f := range cfg.Fanout {
		if f < 1 {
			return nil, errors.New("hierarchy: fanout must be at least 1")
		}
	}
	if cfg.Link.BytesPerSecond <= 0 {
		cfg.Link = simnet.Link{BytesPerSecond: 10e6, Latency: 10 * time.Millisecond}
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	h := &Hierarchy{
		Net:     simnet.NewNetwork(),
		Clock:   simnet.NewClock(cfg.Start),
		nodes:   make(map[simnet.SiteID]*Node),
		aggName: AggregatorName,
		cfg:     cfg,
	}
	var build func(level int, path string, parent *Node) (*Node, error)
	build = func(level int, path string, parent *Node) (*Node, error) {
		n, err := h.newNode(path, cfg.Levels[level], parent)
		if err != nil {
			return nil, err
		}
		if level < len(cfg.Levels)-1 {
			for i := 0; i < cfg.Fanout[level]; i++ {
				child, err := build(level+1, fmt.Sprintf("%s/%s%d", path, cfg.Levels[level+1], i), n)
				if err != nil {
					return nil, err
				}
				n.Children = append(n.Children, child)
			}
		}
		return n, nil
	}
	root, err := build(0, cfg.Levels[0], nil)
	if err != nil {
		return nil, err
	}
	h.Root = root
	return h, nil
}

// newNode registers one site: a data store with the Flowtree aggregator
// subscribed to the "flows" stream, a simnet site, and (for non-roots) the
// configured link to its parent.
func (h *Hierarchy) newNode(path, level string, parent *Node) (*Node, error) {
	site := simnet.SiteID(path)
	if _, exists := h.nodes[site]; exists {
		return nil, fmt.Errorf("hierarchy: site %q already exists", site)
	}
	store := datastore.New(path, h.Clock.Now)
	budget := h.cfg.TreeBudget
	err := store.Register(datastore.AggregatorConfig{
		Name: h.aggName,
		New: func() (primitive.Aggregator, error) {
			return primitive.NewFlowtree(AggregatorName, budget)
		},
		Strategy:    datastore.StrategyRoundRobin,
		BudgetBytes: 64 << 20,
	})
	if err != nil {
		return nil, err
	}
	if err := store.Subscribe("flows", h.aggName); err != nil {
		return nil, err
	}
	n := &Node{Site: site, Level: level, Store: store, Parent: parent}
	h.Net.AddSite(site)
	h.nodes[site] = n
	if parent != nil {
		if err := h.Net.Connect(parent.Site, site, h.cfg.Link); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Graft adds a new site named name under parent at the given level name —
// topology churn: an aggregator or leaf joining mid-run. The node gets the
// same store registration, tree budget and link as construction-time nodes
// and participates in the next Rollup.
func (h *Hierarchy) Graft(parent simnet.SiteID, name, level string) (*Node, error) {
	p, ok := h.nodes[parent]
	if !ok {
		return nil, fmt.Errorf("hierarchy: graft under unknown site %q", parent)
	}
	n, err := h.newNode(fmt.Sprintf("%s/%s", parent, name), level, p)
	if err != nil {
		return nil, err
	}
	p.Children = append(p.Children, n)
	return n, nil
}

// Prune detaches the subtree rooted at site — topology churn: an
// aggregator or leaf leaving mid-run. Weight already merged upward stays;
// unexported weight at the pruned nodes is lost, as it would be when a real
// site disappears. The root cannot be pruned.
func (h *Hierarchy) Prune(site simnet.SiteID) error {
	n, ok := h.nodes[site]
	if !ok {
		return fmt.Errorf("hierarchy: prune unknown site %q", site)
	}
	if n.Parent == nil {
		return errors.New("hierarchy: cannot prune the root")
	}
	kept := n.Parent.Children[:0]
	for _, c := range n.Parent.Children {
		if c != n {
			kept = append(kept, c)
		}
	}
	n.Parent.Children = kept
	var detach func(*Node)
	detach = func(x *Node) {
		delete(h.nodes, x.Site)
		for _, c := range x.Children {
			detach(c)
		}
	}
	detach(n)
	return nil
}

// NewFactory builds the Figure 1a topology: cloud → factory → production
// lines → machines.
func NewFactory(lines, machinesPerLine, treeBudget int) (*Hierarchy, error) {
	return New(Config{
		Levels:     []string{"cloud", "factory", "line", "machine"},
		Fanout:     []int{1, lines, machinesPerLine},
		TreeBudget: treeBudget,
	})
}

// NewNetworkMonitoring builds the Figure 1b topology: cloud → network →
// regions → routers.
func NewNetworkMonitoring(regions, routersPerRegion, treeBudget int) (*Hierarchy, error) {
	return New(Config{
		Levels:     []string{"cloud", "network", "region", "router"},
		Fanout:     []int{1, regions, routersPerRegion},
		TreeBudget: treeBudget,
	})
}

// Leaves returns the leaf nodes in deterministic order.
func (h *Hierarchy) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if len(n.Children) == 0 {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.Root)
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// Node returns the node at site.
func (h *Hierarchy) Node(site simnet.SiteID) (*Node, bool) {
	n, ok := h.nodes[site]
	return n, ok
}

// IngestAtLeaf feeds flow records into one leaf's data store.
func (h *Hierarchy) IngestAtLeaf(leaf *Node, recs []flow.Record) error {
	for _, r := range recs {
		if err := leaf.Store.Ingest("flows", r); err != nil {
			return err
		}
	}
	return nil
}

// LevelBytes reports, per level, how many bytes that level exported to its
// parents during a rollup.
type LevelBytes struct {
	Level string
	Bytes uint64
	Nodes int
}

// Rollup exports every node's live Flowtree to its parent, bottom-up:
// snapshot, serialize, transfer over the WAN (metered), merge into the
// parent's live tree — the paper's "A12 = compress(A1 ∪ A2)" across the
// hierarchy. Within a level the exports run through a bounded worker pool
// (Config.ExportWorkers) so slow links overlap, with a barrier between
// levels: a parent exports only after all its children merged in. Exports
// read a snapshot taken under the store locks, so leaves may keep ingesting
// concurrently.
//
// A failing node — a transient link fault, a store error — does not abort
// the pass: the rest of its level and every upper level still ship, and the
// per-node errors come back joined (errors.Join) alongside the report for
// the levels that did export. The failed node's weight is not lost: it
// stays in its live tree and rides the next rollup.
func (h *Hierarchy) Rollup() ([]LevelBytes, error) {
	perLevel := map[string]*LevelBytes{}
	// Process deepest levels first: collect nodes by depth.
	var byDepth [][]*Node
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		for len(byDepth) <= depth {
			byDepth = append(byDepth, nil)
		}
		byDepth[depth] = append(byDepth[depth], n)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	workers := h.cfg.ExportWorkers
	if workers <= 0 {
		workers = 8
	}
	var errs []error
	for depth := len(byDepth) - 1; depth > 0; depth-- {
		nodes := byDepth[depth]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].Site < nodes[j].Site })
		nodeErrs := make([]error, len(nodes))
		var mu sync.Mutex
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, n := range nodes {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, n *Node) {
				defer wg.Done()
				defer func() { <-sem }()
				size, err := h.exportNode(n)
				if err != nil {
					nodeErrs[i] = err
					return
				}
				mu.Lock()
				lb := perLevel[n.Level]
				if lb == nil {
					lb = &LevelBytes{Level: n.Level}
					perLevel[n.Level] = lb
				}
				lb.Bytes += size
				lb.Nodes++
				mu.Unlock()
			}(i, n)
		}
		wg.Wait()
		for _, err := range nodeErrs {
			if err != nil {
				errs = append(errs, err)
			}
		}
	}
	// Leaves first in the report (deepest level first).
	var out []LevelBytes
	for depth := len(byDepth) - 1; depth > 0; depth-- {
		level := byDepth[depth][0].Level
		if lb, ok := perLevel[level]; ok {
			out = append(out, *lb)
			delete(perLevel, level)
		}
	}
	return out, errors.Join(errs...)
}

// exportNode ships one node's live summary to its parent and returns the
// metered byte volume.
func (h *Hierarchy) exportNode(n *Node) (uint64, error) {
	agg, err := n.Store.SnapshotLive(h.aggName)
	if err != nil {
		return 0, fmt.Errorf("hierarchy: snapshot %s: %w", n.Site, err)
	}
	ft, ok := agg.(*primitive.FlowtreeAggregator)
	if !ok {
		return 0, fmt.Errorf("hierarchy: node %s aggregator is %T", n.Site, agg)
	}
	size := ft.Tree().SizeBytes()
	if _, err := h.Net.Transfer(n.Site, n.Parent.Site, size); err != nil {
		return 0, fmt.Errorf("hierarchy: export %s: %w", n.Site, err)
	}
	// MergeLive (rather than mutating a Live reference) keeps the rollup
	// correct even if a node's store is sharded.
	if err := n.Parent.Store.MergeLive(h.aggName, ft); err != nil {
		return 0, fmt.Errorf("hierarchy: merge into %s: %w", n.Parent.Site, err)
	}
	return size, nil
}

// RootTree returns the root's merged live Flowtree.
func (h *Hierarchy) RootTree() (*flowtree.Tree, error) {
	agg, err := h.Root.Store.Live(h.aggName)
	if err != nil {
		return nil, err
	}
	ft, ok := agg.(*primitive.FlowtreeAggregator)
	if !ok {
		return nil, fmt.Errorf("hierarchy: root aggregator is %T", agg)
	}
	return ft.Tree(), nil
}
