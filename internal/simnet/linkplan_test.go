package simnet

import (
	"testing"
	"time"
)

func testPlan(seed int64) LinkPlan {
	return LinkPlan{
		Seed: seed,
		Classes: []LinkClass{
			{Name: "fiber", Weight: 2, Link: Link{BytesPerSecond: 100e6, Latency: 5 * time.Millisecond}},
			{Name: "dsl", Weight: 5, Link: Link{BytesPerSecond: 10e6, Latency: 20 * time.Millisecond}},
			{Name: "lossy", Weight: 3, Link: Link{BytesPerSecond: 1e6, Latency: 80 * time.Millisecond, FailEvery: 7}},
		},
	}
}

func TestLinkPlanDeterministicAndMixed(t *testing.T) {
	p := testPlan(42)
	seen := map[string]int{}
	for i := 0; i < 500; i++ {
		a := SiteID([]byte{'s', byte(i), byte(i >> 8)})
		c1, ok := p.ClassOf(a, "central")
		if !ok {
			t.Fatal("plan with classes returned no class")
		}
		c2, _ := p.ClassOf(a, "central")
		if c1.Name != c2.Name {
			t.Fatalf("assignment not deterministic: %s vs %s", c1.Name, c2.Name)
		}
		seen[c1.Name]++
	}
	// All three grades must actually occur across a 500-site fleet.
	for _, c := range p.Classes {
		if seen[c.Name] == 0 {
			t.Errorf("class %s never assigned: %v", c.Name, seen)
		}
	}
	// A different seed reshuffles at least one assignment.
	q := testPlan(43)
	moved := false
	for i := 0; i < 500 && !moved; i++ {
		a := SiteID([]byte{'s', byte(i), byte(i >> 8)})
		c1, _ := p.ClassOf(a, "central")
		c2, _ := q.ClassOf(a, "central")
		moved = c1.Name != c2.Name
	}
	if !moved {
		t.Error("seed change did not move any assignment")
	}
}

func TestLinkPlanEmptyAndZeroWeight(t *testing.T) {
	if _, ok := (LinkPlan{}).For("a", "b"); ok {
		t.Error("empty plan must assign nothing")
	}
	if !(LinkPlan{}).Empty() {
		t.Error("Empty() = false for empty plan")
	}
	zero := LinkPlan{Classes: []LinkClass{{Name: "x", Weight: 0}}}
	if _, ok := zero.ClassOf("a", "b"); ok {
		t.Error("all-zero-weight plan must assign nothing")
	}
	only := LinkPlan{Classes: []LinkClass{
		{Name: "dead", Weight: 0, Link: Link{BytesPerSecond: 1}},
		{Name: "live", Weight: 1, Link: Link{BytesPerSecond: 2}},
	}}
	c, ok := only.ClassOf("a", "b")
	if !ok || c.Name != "live" {
		t.Errorf("zero-weight class selected: %+v ok=%v", c, ok)
	}
}
