// Package simnet is the simulated wide-area network substrate. The paper's
// transfer-optimization story (Section VII) is measured in transferred bytes
// and query latency; simnet provides exactly those quantities: named sites,
// links with bandwidth and propagation latency, byte-metered transfers, and
// a virtual clock so experiments run deterministically and faster than real
// time.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock shared by a simulation.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock builds a clock starting at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// SiteID names a site (data store location) in the simulated network.
type SiteID string

// Link describes one directed link's characteristics.
type Link struct {
	// BytesPerSecond is the link bandwidth.
	BytesPerSecond float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
}

// Errors returned by the network.
var (
	ErrUnknownSite = errors.New("simnet: unknown site")
	ErrNoRoute     = errors.New("simnet: no route between sites")
)

// TransferStats accumulates per-link traffic accounting.
type TransferStats struct {
	Transfers uint64
	Bytes     uint64
	// Time is the summed transfer durations (serialization + latency).
	Time time.Duration
}

// Network is a set of sites connected by directed links. All methods are
// safe for concurrent use.
type Network struct {
	mu    sync.Mutex
	sites map[SiteID]bool
	links map[[2]SiteID]Link
	stats map[[2]SiteID]*TransferStats
	total TransferStats
}

// NewNetwork builds an empty network.
func NewNetwork() *Network {
	return &Network{
		sites: make(map[SiteID]bool),
		links: make(map[[2]SiteID]Link),
		stats: make(map[[2]SiteID]*TransferStats),
	}
}

// AddSite registers a site. Adding an existing site is a no-op.
func (n *Network) AddSite(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sites[id] = true
}

// Sites returns the registered sites in deterministic order.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]SiteID, 0, len(n.sites))
	for s := range n.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connect installs a symmetric pair of links between a and b.
func (n *Network) Connect(a, b SiteID, link Link) error {
	if link.BytesPerSecond <= 0 {
		return errors.New("simnet: link bandwidth must be positive")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.sites[a] || !n.sites[b] {
		return fmt.Errorf("%w: %s or %s", ErrUnknownSite, a, b)
	}
	n.links[[2]SiteID{a, b}] = link
	n.links[[2]SiteID{b, a}] = link
	return nil
}

// TransferTime computes the duration of moving bytes from a to b without
// performing the transfer: latency + bytes/bandwidth. Local "transfers"
// (a == b) are free.
func (n *Network) TransferTime(a, b SiteID, bytes uint64) (time.Duration, error) {
	if a == b {
		return 0, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	link, ok := n.links[[2]SiteID{a, b}]
	if !ok {
		return 0, fmt.Errorf("%w: %s -> %s", ErrNoRoute, a, b)
	}
	ser := time.Duration(float64(bytes) / link.BytesPerSecond * float64(time.Second))
	return link.Latency + ser, nil
}

// Transfer meters a transfer of bytes from a to b and returns its duration.
func (n *Network) Transfer(a, b SiteID, bytes uint64) (time.Duration, error) {
	d, err := n.TransferTime(a, b, bytes)
	if err != nil {
		return 0, err
	}
	if a == b {
		return 0, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	key := [2]SiteID{a, b}
	st, ok := n.stats[key]
	if !ok {
		st = &TransferStats{}
		n.stats[key] = st
	}
	st.Transfers++
	st.Bytes += bytes
	st.Time += d
	n.total.Transfers++
	n.total.Bytes += bytes
	n.total.Time += d
	return d, nil
}

// LinkStats returns a copy of the accounting for the directed link a->b.
func (n *Network) LinkStats(a, b SiteID) TransferStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.stats[[2]SiteID{a, b}]; ok {
		return *st
	}
	return TransferStats{}
}

// TotalStats returns a copy of the whole-network accounting.
func (n *Network) TotalStats() TransferStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// ResetStats clears all accounting (between experiment runs).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = make(map[[2]SiteID]*TransferStats)
	n.total = TransferStats{}
}
