// Package simnet is the simulated wide-area network substrate. The paper's
// transfer-optimization story (Section VII) is measured in transferred bytes
// and query latency; simnet provides exactly those quantities: named sites,
// links with bandwidth and propagation latency, byte-metered transfers, and
// a virtual clock so experiments run deterministically and faster than real
// time.
package simnet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Clock is a monotonically advancing virtual clock shared by a simulation.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock builds a clock starting at start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// AdvanceTo moves the clock to t if t is in the future.
func (c *Clock) AdvanceTo(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t.After(c.now) {
		c.now = t
	}
}

// SiteID names a site (data store location) in the simulated network.
type SiteID string

// Link describes one directed link's characteristics.
type Link struct {
	// BytesPerSecond is the link bandwidth.
	BytesPerSecond float64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// FailEvery injects deterministic transient failures: every FailEvery-th
	// transfer attempt on the link (the 2nd, 4th, ... for FailEvery=2)
	// fails with ErrTransient before any byte is metered. 0 disables
	// injection. Exporters are expected to retry from local retention —
	// the failure is an event on the link, not a topology change.
	FailEvery int
}

// Errors returned by the network.
var (
	ErrUnknownSite = errors.New("simnet: unknown site")
	ErrNoRoute     = errors.New("simnet: no route between sites")
	// ErrTransient marks an injected transient transfer failure
	// (Link.FailEvery): the link is still up and a retry may succeed.
	ErrTransient = errors.New("simnet: transient transfer failure")
)

// TransferStats accumulates per-link traffic accounting.
type TransferStats struct {
	// Attempts counts all transfer attempts, including failed ones.
	Attempts uint64
	// Transfers counts completed transfers; Bytes and Time cover only
	// these.
	Transfers uint64
	// Failures counts attempts that failed with ErrTransient.
	Failures uint64
	Bytes    uint64
	// Time is the summed transfer durations (serialization + latency).
	Time time.Duration
}

// Network is a set of sites connected by directed links. All methods are
// safe for concurrent use.
type Network struct {
	mu    sync.Mutex
	sites map[SiteID]bool
	links map[[2]SiteID]Link
	stats map[[2]SiteID]*TransferStats
	total TransferStats
	// pace scales transfer durations into real wall-clock occupancy
	// (SetRealtime); 0 keeps transfers instantaneous.
	pace float64
}

// NewNetwork builds an empty network.
func NewNetwork() *Network {
	return &Network{
		sites: make(map[SiteID]bool),
		links: make(map[[2]SiteID]Link),
		stats: make(map[[2]SiteID]*TransferStats),
	}
}

// AddSite registers a site. Adding an existing site is a no-op.
func (n *Network) AddSite(id SiteID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sites[id] = true
}

// Sites returns the registered sites in deterministic order.
func (n *Network) Sites() []SiteID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]SiteID, 0, len(n.sites))
	for s := range n.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connect installs a symmetric pair of links between a and b.
func (n *Network) Connect(a, b SiteID, link Link) error {
	if link.BytesPerSecond <= 0 {
		return errors.New("simnet: link bandwidth must be positive")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.sites[a] || !n.sites[b] {
		return fmt.Errorf("%w: %s or %s", ErrUnknownSite, a, b)
	}
	n.links[[2]SiteID{a, b}] = link
	n.links[[2]SiteID{b, a}] = link
	return nil
}

// duration is the time moving bytes across the link takes: propagation
// latency plus serialization at the link bandwidth. TransferTime (planning)
// and Transfer (accounting) both use it.
func (l Link) duration(bytes uint64) time.Duration {
	return l.Latency + time.Duration(float64(bytes)/l.BytesPerSecond*float64(time.Second))
}

// TransferTime computes the duration of moving bytes from a to b without
// performing the transfer: latency + bytes/bandwidth. Local "transfers"
// (a == b) are free.
func (n *Network) TransferTime(a, b SiteID, bytes uint64) (time.Duration, error) {
	if a == b {
		return 0, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	link, ok := n.links[[2]SiteID{a, b}]
	if !ok {
		return 0, fmt.Errorf("%w: %s -> %s", ErrNoRoute, a, b)
	}
	return link.duration(bytes), nil
}

// SetRealtime makes transfers occupy real wall-clock time: every Transfer
// blocks for its computed duration multiplied by scale before returning
// (scale 0 restores instantaneous accounting-only transfers). This models
// what a constrained WAN link actually costs a serial exporter — time —
// and is what pipelined exporters overlap; benchmarks use it to measure
// epoch turnaround instead of just counting bytes.
func (n *Network) SetRealtime(scale float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if scale < 0 {
		scale = 0
	}
	n.pace = scale
}

// Transfer meters a transfer of bytes from a to b and returns its duration.
// With Link.FailEvery set, every FailEvery-th attempt fails with
// ErrTransient and meters nothing but the failed attempt. With SetRealtime
// pacing, the call additionally sleeps for the scaled duration, simulating
// link occupancy.
func (n *Network) Transfer(a, b SiteID, bytes uint64) (time.Duration, error) {
	if a == b {
		return 0, nil
	}
	n.mu.Lock()
	link, ok := n.links[[2]SiteID{a, b}]
	if !ok {
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s -> %s", ErrNoRoute, a, b)
	}
	key := [2]SiteID{a, b}
	st, have := n.stats[key]
	if !have {
		st = &TransferStats{}
		n.stats[key] = st
	}
	st.Attempts++
	n.total.Attempts++
	if link.FailEvery > 0 && st.Attempts%uint64(link.FailEvery) == 0 {
		st.Failures++
		n.total.Failures++
		n.mu.Unlock()
		return 0, fmt.Errorf("%w: %s -> %s attempt %d", ErrTransient, a, b, st.Attempts)
	}
	d := link.duration(bytes)
	st.Transfers++
	st.Bytes += bytes
	st.Time += d
	n.total.Transfers++
	n.total.Bytes += bytes
	n.total.Time += d
	pace := n.pace
	n.mu.Unlock()
	if pace > 0 {
		time.Sleep(time.Duration(float64(d) * pace))
	}
	return d, nil
}

// LinkStats returns a copy of the accounting for the directed link a->b.
func (n *Network) LinkStats(a, b SiteID) TransferStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if st, ok := n.stats[[2]SiteID{a, b}]; ok {
		return *st
	}
	return TransferStats{}
}

// TotalStats returns a copy of the whole-network accounting.
func (n *Network) TotalStats() TransferStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.total
}

// ResetStats clears all accounting (between experiment runs).
func (n *Network) ResetStats() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stats = make(map[[2]SiteID]*TransferStats)
	n.total = TransferStats{}
}
