package simnet

import "hash/fnv"

// LinkClass is one weighted link profile in a LinkPlan: a named speed
// grade (e.g. "fiber", "dsl", "lossy-dsl") and how much of the fleet it
// covers relative to the other classes.
type LinkClass struct {
	Name   string
	Weight int
	Link   Link
}

// LinkPlan deterministically assigns heterogeneous link profiles across a
// fleet. For hashes (Seed, a, b) and picks a class by weight, so a
// topology builder gets a reproducible mixed-speed, mixed-loss network
// from one seed without enumerating links — and the assignment depends
// only on the seed and the two site ids, never on construction order or
// fleet size. An empty plan (no classes) assigns nothing; builders fall
// back to their uniform default link.
type LinkPlan struct {
	Seed    int64
	Classes []LinkClass
}

// Empty reports whether the plan assigns no classes.
func (p LinkPlan) Empty() bool { return len(p.Classes) == 0 }

// ClassOf returns the class the plan assigns to the directed pair (a, b),
// and false when the plan is empty or all weights are zero.
func (p LinkPlan) ClassOf(a, b SiteID) (LinkClass, bool) {
	total := 0
	for _, c := range p.Classes {
		if c.Weight > 0 {
			total += c.Weight
		}
	}
	if total == 0 {
		return LinkClass{}, false
	}
	h := fnv.New64a()
	var seed [8]byte
	for i := 0; i < 8; i++ {
		seed[i] = byte(uint64(p.Seed) >> (8 * i))
	}
	h.Write(seed[:])
	h.Write([]byte(a))
	h.Write([]byte{0})
	h.Write([]byte(b))
	pick := int(h.Sum64() % uint64(total))
	for _, c := range p.Classes {
		if c.Weight <= 0 {
			continue
		}
		pick -= c.Weight
		if pick < 0 {
			return c, true
		}
	}
	return LinkClass{}, false // unreachable
}

// For returns the link profile the plan assigns to the directed pair
// (a, b), and false when the plan is empty.
func (p LinkPlan) For(a, b SiteID) (Link, bool) {
	c, ok := p.ClassOf(a, b)
	return c.Link, ok
}
