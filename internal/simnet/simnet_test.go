package simnet

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

func TestClock(t *testing.T) {
	c := NewClock(t0)
	if !c.Now().Equal(t0) {
		t.Errorf("Now = %v", c.Now())
	}
	c.Advance(time.Minute)
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Errorf("after Advance: %v", c.Now())
	}
	c.Advance(-time.Hour)
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Error("negative Advance must be ignored")
	}
	c.AdvanceTo(t0) // in the past
	if !c.Now().Equal(t0.Add(time.Minute)) {
		t.Error("AdvanceTo in the past must be ignored")
	}
	c.AdvanceTo(t0.Add(time.Hour))
	if !c.Now().Equal(t0.Add(time.Hour)) {
		t.Errorf("AdvanceTo: %v", c.Now())
	}
}

func TestClockConcurrent(t *testing.T) {
	c := NewClock(t0)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Advance(time.Millisecond)
				_ = c.Now()
			}
		}()
	}
	wg.Wait()
	if got := c.Now().Sub(t0); got != 8*time.Second {
		t.Errorf("concurrent advances lost updates: %v", got)
	}
}

func newTestNet(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	n.AddSite("edge")
	n.AddSite("cloud")
	if err := n.Connect("edge", "cloud", Link{BytesPerSecond: 1e6, Latency: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConnectValidation(t *testing.T) {
	n := NewNetwork()
	n.AddSite("a")
	if err := n.Connect("a", "missing", Link{BytesPerSecond: 1}); !errors.Is(err, ErrUnknownSite) {
		t.Errorf("want ErrUnknownSite, got %v", err)
	}
	n.AddSite("b")
	if err := n.Connect("a", "b", Link{BytesPerSecond: 0}); err == nil {
		t.Error("zero bandwidth must error")
	}
}

func TestTransferTime(t *testing.T) {
	n := newTestNet(t)
	// 1 MB at 1 MB/s + 50ms latency = 1.05s
	d, err := n.TransferTime("edge", "cloud", 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1050*time.Millisecond {
		t.Errorf("TransferTime = %v", d)
	}
	// Local transfer is free.
	d, err = n.TransferTime("edge", "edge", 1e9)
	if err != nil || d != 0 {
		t.Errorf("local transfer: %v, %v", d, err)
	}
	if _, err := n.TransferTime("edge", "nowhere", 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("want ErrNoRoute, got %v", err)
	}
}

func TestTransferAccounting(t *testing.T) {
	n := newTestNet(t)
	for i := 0; i < 3; i++ {
		if _, err := n.Transfer("edge", "cloud", 1000); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Transfer("cloud", "edge", 500); err != nil {
		t.Fatal(err)
	}
	up := n.LinkStats("edge", "cloud")
	if up.Transfers != 3 || up.Bytes != 3000 {
		t.Errorf("uplink stats = %+v", up)
	}
	down := n.LinkStats("cloud", "edge")
	if down.Transfers != 1 || down.Bytes != 500 {
		t.Errorf("downlink stats = %+v", down)
	}
	total := n.TotalStats()
	if total.Transfers != 4 || total.Bytes != 3500 {
		t.Errorf("total stats = %+v", total)
	}
	// Local transfers are not metered.
	if _, err := n.Transfer("edge", "edge", 1e9); err != nil {
		t.Fatal(err)
	}
	if n.TotalStats().Bytes != 3500 {
		t.Error("local transfer was metered")
	}
	n.ResetStats()
	if n.TotalStats() != (TransferStats{}) {
		t.Error("ResetStats did not clear")
	}
}

func TestSitesDeterministicOrder(t *testing.T) {
	n := NewNetwork()
	for _, s := range []SiteID{"z", "a", "m"} {
		n.AddSite(s)
	}
	got := n.Sites()
	if len(got) != 3 || got[0] != "a" || got[1] != "m" || got[2] != "z" {
		t.Errorf("Sites = %v", got)
	}
}

func TestTransferConcurrent(t *testing.T) {
	n := newTestNet(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 250; j++ {
				_, _ = n.Transfer("edge", "cloud", 10)
			}
		}()
	}
	wg.Wait()
	total := n.TotalStats()
	if total.Transfers != 2000 || total.Bytes != 20000 {
		t.Errorf("concurrent accounting lost updates: %+v", total)
	}
}

func TestFailEveryInjectsTransientFailures(t *testing.T) {
	n := NewNetwork()
	n.AddSite("edge")
	n.AddSite("cloud")
	if err := n.Connect("edge", "cloud", Link{BytesPerSecond: 1e6, FailEvery: 3}); err != nil {
		t.Fatal(err)
	}
	var failures int
	for i := 1; i <= 9; i++ {
		_, err := n.Transfer("edge", "cloud", 100)
		if i%3 == 0 {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("attempt %d: want ErrTransient, got %v", i, err)
			}
			failures++
		} else if err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
	}
	st := n.LinkStats("edge", "cloud")
	if st.Attempts != 9 || st.Failures != 3 || st.Transfers != 6 {
		t.Errorf("stats = %+v, want 9 attempts / 3 failures / 6 transfers", st)
	}
	// Failed attempts meter no bytes.
	if st.Bytes != 600 {
		t.Errorf("bytes = %d, want 600", st.Bytes)
	}
	total := n.TotalStats()
	if total.Failures != 3 || total.Attempts != 9 {
		t.Errorf("total = %+v", total)
	}
}

func TestSetRealtimePacesTransfers(t *testing.T) {
	n := NewNetwork()
	n.AddSite("a")
	n.AddSite("b")
	if err := n.Connect("a", "b", Link{BytesPerSecond: 1e6, Latency: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	n.SetRealtime(1.0)
	start := time.Now()
	d, err := n.Transfer("a", "b", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d/2 {
		t.Errorf("paced transfer returned after %v, computed duration %v", elapsed, d)
	}
	n.SetRealtime(0)
	start = time.Now()
	if _, err := n.Transfer("a", "b", 1000); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Millisecond {
		t.Errorf("unpaced transfer took %v", elapsed)
	}
}
