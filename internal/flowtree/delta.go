package flowtree

// Epoch-delta codec (wire version 3). Federated exporters ship the same
// site's tree every epoch, and on low-churn traffic consecutive epochs
// share most of their entries. A v3 frame therefore carries only the
// structural difference against the last frame the receiver acknowledged:
// changed entries (added or re-weighted keys with their absolute counters)
// and removed keys. The sorted-key v2 layout makes computing that
// difference a linear merge-walk over the two entry lists, and applying it
// a linear rebuild. The frame pins its base with an 8-byte fingerprint
// (DeltaHash) so a desynchronized receiver fails loudly (ErrDeltaBase)
// instead of silently merging onto the wrong epoch; senders then recover by
// falling back to a full v2 frame (AppendDeltaOrFull).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"megadata/internal/flow"
)

// ErrDeltaBase is returned when a v3 delta frame cannot be applied: the
// receiver retains no base tree, or the retained base does not match the
// fingerprint the frame was encoded against. The sender's recovery is a
// full v2 frame.
var ErrDeltaBase = errors.New("flowtree: delta base mismatch")

// deltaHashSize is the base fingerprint width in the v3 body.
const deltaHashSize = 8

// DeltaHash fingerprints the tree's wire-visible content: FNV-64a over the
// generalization step and every weighted entry (normalized key and
// counters) in the deterministic wire order. Two trees that encode to the
// same v2 bytes hash equal; v3 frames embed the base's hash so the decoder
// can verify it is applying the delta onto the tree the encoder diffed
// against.
func (t *Tree) DeltaHash() uint64 {
	h := fnv.New64a()
	var buf [24]byte
	buf[0] = t.stepBits
	h.Write(buf[:1])
	key := make([]byte, 0, 16)
	for _, e := range t.wireEntries() {
		key = e.Key.AppendBinary(key[:0])
		h.Write(key)
		binary.BigEndian.PutUint64(buf[0:], e.Counters.Packets)
		binary.BigEndian.PutUint64(buf[8:], e.Counters.Bytes)
		binary.BigEndian.PutUint64(buf[16:], e.Counters.Flows)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// treeDelta is the structural difference between two sorted wire-entry
// lists: entries to upsert and keys to drop.
type treeDelta struct {
	changed []Entry
	removed []flow.Key
}

// diffEntries merge-walks two keyLess-sorted entry lists and returns the
// delta transforming base into cur. O(len(cur) + len(base)).
func diffEntries(cur, base []Entry) treeDelta {
	var d treeDelta
	i, j := 0, 0
	for i < len(cur) && j < len(base) {
		switch {
		case cur[i].Key == base[j].Key:
			if cur[i].Counters != base[j].Counters {
				d.changed = append(d.changed, cur[i])
			}
			i++
			j++
		case keyLess(cur[i].Key, base[j].Key):
			d.changed = append(d.changed, cur[i])
			i++
		default:
			d.removed = append(d.removed, base[j].Key)
			j++
		}
	}
	d.changed = append(d.changed, cur[i:]...)
	for ; j < len(base); j++ {
		d.removed = append(d.removed, base[j].Key)
	}
	return d
}

// AppendDelta serializes t as a v3 delta frame against base, the tree the
// receiver is known to retain (typically the last acked epoch's decode).
// The base must share t's generalization step; a nil or mismatched base is
// ErrDeltaBase — callers that may lack a base use AppendDeltaOrFull.
func (t *Tree) AppendDelta(dst []byte, base *Tree) ([]byte, error) {
	if base == nil {
		return nil, fmt.Errorf("%w: nil base", ErrDeltaBase)
	}
	if base.stepBits != t.stepBits {
		return nil, fmt.Errorf("%w: generalization step %d vs base %d", ErrDeltaBase, t.stepBits, base.stepBits)
	}
	return t.appendDelta(dst, base, diffEntries(t.wireEntries(), base.wireEntries())), nil
}

func (t *Tree) appendDelta(dst []byte, base *Tree, d treeDelta) []byte {
	dst = t.appendHeader(dst, WireV3)
	var hb [deltaHashSize]byte
	binary.BigEndian.PutUint64(hb[:], base.DeltaHash())
	dst = append(dst, hb[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(d.changed)))
	var prev flow.Key
	for _, e := range d.changed {
		dst = v2AppendEntry(dst, prev, e)
		prev = e.Key
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.removed)))
	prev = flow.Key{}
	for _, k := range d.removed {
		dst = v2AppendKey(dst, prev, k)
		prev = k
	}
	return dst
}

// AppendDeltaOrFull serializes t as a v3 delta frame against base when a
// delta pays, and as a full v2 frame otherwise: no usable base (nil or
// different generalization step), or churn — changed plus removed entries —
// exceeding maxChurn as a fraction of t's entry count (maxChurn <= 0
// disables the fallback). The second return reports whether a delta was
// emitted; senders use it to know the receiver must hold the base.
func (t *Tree) AppendDeltaOrFull(dst []byte, base *Tree, maxChurn float64) ([]byte, bool) {
	if base == nil || base.stepBits != t.stepBits {
		return t.AppendBinary(dst), false
	}
	cur := t.wireEntries()
	d := diffEntries(cur, base.wireEntries())
	if maxChurn > 0 {
		n := len(cur)
		if n == 0 {
			n = 1
		}
		if float64(len(d.changed)+len(d.removed)) > maxChurn*float64(n) {
			return t.AppendBinary(dst), false
		}
	}
	return t.appendDelta(dst, base, d), true
}

// DecodeDelta reconstructs the full tree from wire data, applying v3 delta
// frames onto base (the receiver's retained copy of the last acked epoch,
// which is never modified). Full v1/v2 frames decode as usual with base
// ignored, so a receive loop can feed every frame through DecodeDelta. A v3
// frame whose fingerprint does not match base fails with ErrDeltaBase; the
// result uses the supplied budget and options like Decode.
func DecodeDelta(src []byte, base *Tree, budget int, opts ...Option) (*Tree, error) {
	if len(src) < wireHeaderSize {
		return nil, fmt.Errorf("%w: short header", ErrCodec)
	}
	if binary.BigEndian.Uint32(src[0:]) != _wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	if src[4] != WireV3 {
		return Decode(src, budget, opts...)
	}
	stepBits := src[5]
	if base == nil {
		return nil, fmt.Errorf("%w: v3 frame with no retained base", ErrDeltaBase)
	}
	if base.stepBits != stepBits {
		return nil, fmt.Errorf("%w: frame step %d, base step %d", ErrDeltaBase, stepBits, base.stepBits)
	}
	body := src[wireHeaderSize:]
	if len(body) < deltaHashSize {
		return nil, fmt.Errorf("%w: short delta body", ErrCodec)
	}
	wantHash := binary.BigEndian.Uint64(body)
	if got := base.DeltaHash(); got != wantHash {
		return nil, fmt.Errorf("%w: retained base hashes %#016x, frame expects %#016x", ErrDeltaBase, got, wantHash)
	}

	r := &v2Reader{src: body[deltaHashSize:]}
	changedCount := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	// A changed entry is at least 4 bytes (flags + three counter uvarints);
	// reject counts that cannot fit before allocating per entry.
	if changedCount > uint64(len(r.src))/4 {
		return nil, fmt.Errorf("%w: %d changed entries cannot fit in %d bytes", ErrCodec, changedCount, len(r.src))
	}
	changed := make([]Entry, 0, changedCount)
	var prev flow.Key
	for i := uint64(0); i < changedCount; i++ {
		k := r.key(prev)
		c := flow.Counters{
			Packets: r.uvarint(),
			Bytes:   r.uvarint(),
			Flows:   r.uvarint(),
		}
		if r.err != nil {
			return nil, r.err
		}
		if i > 0 && !keyLess(prev, k) {
			return nil, fmt.Errorf("%w: changed entries out of order", ErrCodec)
		}
		if c.IsZero() {
			return nil, fmt.Errorf("%w: changed entry with zero weight (should be a removal)", ErrCodec)
		}
		changed = append(changed, Entry{Key: k.Normalized(), Counters: c})
		prev = k
	}
	removedCount := r.uvarint()
	if r.err != nil {
		return nil, r.err
	}
	// A removed key is at least 1 byte (its flags).
	if removedCount > uint64(len(r.src)) {
		return nil, fmt.Errorf("%w: %d removed keys cannot fit in %d bytes", ErrCodec, removedCount, len(r.src))
	}
	removed := make([]flow.Key, 0, removedCount)
	prev = flow.Key{}
	for i := uint64(0); i < removedCount; i++ {
		k := r.key(prev)
		if r.err != nil {
			return nil, r.err
		}
		if i > 0 && !keyLess(prev, k) {
			return nil, fmt.Errorf("%w: removed keys out of order", ErrCodec)
		}
		removed = append(removed, k.Normalized())
		prev = k
	}
	if len(r.src) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.src))
	}

	// Validate the delta against the base's entry set: removals must name
	// base entries, and a key cannot be both removed and changed.
	baseEntries := base.wireEntries()
	baseKeys := make(map[flow.Key]bool, len(baseEntries))
	for _, e := range baseEntries {
		baseKeys[e.Key] = true
	}
	removedSet := make(map[flow.Key]bool, len(removed))
	for _, k := range removed {
		if !baseKeys[k] {
			return nil, fmt.Errorf("%w: removed key %v absent from base", ErrCodec, k)
		}
		removedSet[k] = true
	}
	replaced := make(map[flow.Key]bool, len(changed))
	for _, e := range changed {
		if removedSet[e.Key] {
			return nil, fmt.Errorf("%w: key %v both changed and removed", ErrCodec, e.Key)
		}
		replaced[e.Key] = true
	}

	opts = append([]Option{WithStepBits(stepBits)}, opts...)
	t, err := New(budget, opts...)
	if err != nil {
		return nil, err
	}
	for _, e := range baseEntries {
		if removedSet[e.Key] || replaced[e.Key] {
			continue
		}
		ni := t.ensure(e.Key)
		t.slab[ni].own.Add(e.Counters)
	}
	for _, e := range changed {
		ni := t.ensure(e.Key)
		t.slab[ni].own.Add(e.Counters)
	}
	t.recomputeAgg(rootIdx)
	t.maybeCompress()
	return t, nil
}
