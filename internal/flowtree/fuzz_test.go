package flowtree

import (
	"testing"

	"megadata/internal/workload"
)

// fuzzTreeSeeds builds the in-code seed corpus of FuzzDecodeTree: both wire
// versions of a real tree, an empty tree, and structurally broken variants.
// The checked-in files under testdata/fuzz/FuzzDecodeTree mirror these so
// the fuzz engine starts from real codec material.
func fuzzTreeSeeds(f *testing.F) [][]byte {
	f.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 5, Skew: 1.3})
	if err != nil {
		f.Fatal(err)
	}
	tr, err := New(0)
	if err != nil {
		f.Fatal(err)
	}
	tr.AddBatch(g.Records(60))
	empty, err := New(0)
	if err != nil {
		f.Fatal(err)
	}
	v1, err := tr.AppendBinaryV(nil, WireV1)
	if err != nil {
		f.Fatal(err)
	}
	v2 := tr.AppendBinary(nil)
	seeds := [][]byte{
		v1,
		v2,
		empty.AppendBinary(nil),
		v2[:len(v2)/2],                     // truncated body
		v2[:wireHeaderSize],                // header only
		append([]byte{}, 0, 0, 0, 0, 0, 0), // bad magic
	}
	badVersion := append([]byte{}, v2[:wireHeaderSize]...)
	badVersion[4] = 99
	seeds = append(seeds, badVersion)
	return seeds
}

// FuzzDecodeTree hammers the Flowtree wire decoders (v1 and v2): Decode
// must never panic on arbitrary bytes, and a successful decode must be
// canonical — re-encoding and re-decoding preserves the tree's total weight
// and node count. Exports cross the WAN (Figure 5 step 3), so this decoder
// faces whatever a damaged link or a hostile peer delivers.
func FuzzDecodeTree(f *testing.F) {
	for _, s := range fuzzTreeSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound per-exec work: a grown input of tens of kilobytes decodes
		// into hundreds of thousands of chain nodes — legitimate work for
		// the decoder, but it turns the fuzz loop into a memory benchmark.
		// Real epochs that large are covered by the codec tests.
		if len(data) > 8<<10 {
			return
		}
		tr, err := Decode(data, 0)
		if err != nil {
			return
		}
		wire := tr.AppendBinary(nil)
		again, err := Decode(wire, 0)
		if err != nil {
			t.Fatalf("re-decode of fresh encoding failed: %v", err)
		}
		if again.Total() != tr.Total() {
			t.Fatalf("round trip changed total: %+v vs %+v", again.Total(), tr.Total())
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed node count: %d vs %d", again.Len(), tr.Len())
		}
		// A budgeted decode of the same bytes must not panic either and
		// never exceeds its budget by more than the compress slack.
		if small, err := Decode(data, 64); err == nil {
			if small.Total() != tr.Total() {
				t.Fatalf("budgeted decode changed total: %+v vs %+v", small.Total(), tr.Total())
			}
		}
	})
}
