package flowtree

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

// fuzzTreeSeeds builds the in-code seed corpus of FuzzDecodeTree: both wire
// versions of a real tree, an empty tree, structurally broken variants, and
// frames from trees that went through the slab's bulk machinery — a
// compressed tree (gapped generalization chains from rebuild reattachment)
// and a compressed-then-regrown tree (free-list slot reuse) — so budgeted
// re-decodes start from material that exercises those paths. The checked-in
// files under testdata/fuzz/FuzzDecodeTree mirror these
// (TestWriteTreeFuzzCorpus regenerates them).
func fuzzTreeSeeds(tb testing.TB) []corpusSeed {
	tb.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 5, Skew: 1.3})
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := New(0)
	if err != nil {
		tb.Fatal(err)
	}
	tr.AddBatch(g.Records(60))
	empty, err := New(0)
	if err != nil {
		tb.Fatal(err)
	}
	step4, err := New(0, WithStepBits(4))
	if err != nil {
		tb.Fatal(err)
	}
	step4.AddBatch(g.Records(40))
	v1, err := tr.AppendBinaryV(nil, WireV1)
	if err != nil {
		tb.Fatal(err)
	}
	v2 := tr.AppendBinary(nil)
	// Majority-fold compression rebuilds the slab and reattaches survivors
	// across chain gaps; regrowing afterwards recycles free-list slots. The
	// encodings of both states feed the fuzz engine slab-shaped frames.
	compressed := tr.Clone()
	compressed.CompressTo(compressed.Len() / 4)
	regrown := compressed.Clone()
	regrown.AddBatch(g.Records(80))
	badVersion := append([]byte{}, v2[:wireHeaderSize]...)
	badVersion[4] = 99
	return []corpusSeed{
		{"seed_v1", v1},
		{"seed_v2", v2},
		{"seed_v2_step4", step4.AppendBinary(nil)},
		{"seed_empty", empty.AppendBinary(nil)},
		{"seed_v2_truncated", v2[:len(v2)/2]},
		{"seed_header_only", v2[:wireHeaderSize]},
		{"seed_bad_magic", append([]byte{}, 0, 0, 0, 0, 0, 0)},
		{"seed_bad_version", badVersion},
		{"seed_v2_compressed", compressed.AppendBinary(nil)},
		{"seed_v1_compressed_regrown", mustV1(tb, regrown)},
		{"seed_v2_compressed_regrown", regrown.AppendBinary(nil)},
	}
}

func mustV1(tb testing.TB, tr *Tree) []byte {
	tb.Helper()
	b, err := tr.AppendBinaryV(nil, WireV1)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// FuzzDecodeTree hammers the Flowtree wire decoders (v1 and v2): Decode
// must never panic on arbitrary bytes, and a successful decode must be
// canonical — re-encoding and re-decoding preserves the tree's total weight
// and node count. Exports cross the WAN (Figure 5 step 3), so this decoder
// faces whatever a damaged link or a hostile peer delivers.
func FuzzDecodeTree(f *testing.F) {
	for _, s := range fuzzTreeSeeds(f) {
		f.Add(s.data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Bound per-exec work: a grown input of tens of kilobytes decodes
		// into hundreds of thousands of chain nodes — legitimate work for
		// the decoder, but it turns the fuzz loop into a memory benchmark.
		// Real epochs that large are covered by the codec tests.
		if len(data) > 8<<10 {
			return
		}
		tr, err := Decode(data, 0)
		if err != nil {
			return
		}
		wire := tr.AppendBinary(nil)
		again, err := Decode(wire, 0)
		if err != nil {
			t.Fatalf("re-decode of fresh encoding failed: %v", err)
		}
		if again.Total() != tr.Total() {
			t.Fatalf("round trip changed total: %+v vs %+v", again.Total(), tr.Total())
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed node count: %d vs %d", again.Len(), tr.Len())
		}
		// A budgeted decode of the same bytes must not panic either and
		// never exceeds its budget by more than the compress slack.
		if small, err := Decode(data, 64); err == nil {
			if small.Total() != tr.Total() {
				t.Fatalf("budgeted decode changed total: %+v vs %+v", small.Total(), tr.Total())
			}
		}
	})
}

// deltaFuzzBase is the deterministic retained base every FuzzDecodeTreeDelta
// execution applies candidate v3 frames onto. Seeds are encoded against this
// exact tree so the fuzz engine starts past the fingerprint check.
func deltaFuzzBase(tb testing.TB) *Tree {
	tb.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 7, Skew: 1.3})
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := New(0)
	if err != nil {
		tb.Fatal(err)
	}
	tr.AddBatch(g.Records(50))
	return tr
}

// corpusSeed is one named seed of the checked-in delta fuzz corpus.
type corpusSeed struct {
	name string
	data []byte
}

// deltaFuzzSeeds builds the in-code seed corpus of FuzzDecodeTreeDelta: a
// real delta against the fuzz base (mutations plus compression folds, so
// both the changed and removed lists are populated), an empty delta, a
// delta with a corrupted base fingerprint, structurally broken variants,
// and a full v2 frame for the pass-through path. The checked-in files under
// testdata/fuzz/FuzzDecodeTreeDelta mirror these (TestWriteDeltaFuzzCorpus
// regenerates them).
func deltaFuzzSeeds(tb testing.TB) []corpusSeed {
	tb.Helper()
	base := deltaFuzzBase(tb)
	cur := base.Clone()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 8, Skew: 1.3})
	if err != nil {
		tb.Fatal(err)
	}
	cur.AddBatch(g.Records(20))
	cur.AddCounters(cur.Entries()[0].Key, flow.Counters{Packets: 3, Bytes: 300, Flows: 1})
	cur.CompressTo(cur.Len() * 3 / 4) // folds ⇒ removed keys in the delta
	delta, err := cur.AppendDelta(nil, base)
	if err != nil {
		tb.Fatal(err)
	}
	empty, err := base.AppendDelta(nil, base.Clone())
	if err != nil {
		tb.Fatal(err)
	}
	badHash := append([]byte{}, delta...)
	badHash[wireHeaderSize] ^= 0xff
	return []corpusSeed{
		{"seed_delta", delta},
		{"seed_delta_empty", empty},
		{"seed_delta_badhash", badHash},
		{"seed_delta_truncated", delta[:len(delta)/2]},
		{"seed_delta_header_only", delta[:wireHeaderSize]},
		{"seed_v2_passthrough", cur.AppendBinary(nil)},
	}
}

// FuzzDecodeTreeDelta hammers the v3 delta decoder: DecodeDelta must never
// panic on arbitrary bytes — with or without a retained base — and a
// successful apply must yield a canonical tree whose re-encoding round
// trips. Delta frames cross the same WAN as full frames, so the decoder
// faces the same damaged links and hostile peers.
func FuzzDecodeTreeDelta(f *testing.F) {
	for _, s := range deltaFuzzSeeds(f) {
		f.Add(s.data)
	}
	base := deltaFuzzBase(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Same per-exec work bound as FuzzDecodeTree.
		if len(data) > 8<<10 {
			return
		}
		tr, err := DecodeDelta(data, base, 0)
		if err != nil {
			// The no-base path must not panic either.
			if _, err := DecodeDelta(data, nil, 0); err == nil {
				t.Fatal("frame decodes with nil base but not with one")
			}
			return
		}
		wire := tr.AppendBinary(nil)
		again, err := Decode(wire, 0)
		if err != nil {
			t.Fatalf("re-decode of applied delta failed: %v", err)
		}
		if again.Total() != tr.Total() {
			t.Fatalf("round trip changed total: %+v vs %+v", again.Total(), tr.Total())
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed node count: %d vs %d", again.Len(), tr.Len())
		}
		// A budgeted apply of the same bytes must not panic and preserves
		// total weight.
		if small, err := DecodeDelta(data, base, 64); err == nil {
			if small.Total() != tr.Total() {
				t.Fatalf("budgeted apply changed total: %+v vs %+v", small.Total(), tr.Total())
			}
		}
	})
}

// writeFuzzCorpus rewrites one fuzz target's checked-in seed files from its
// in-code seeds.
func writeFuzzCorpus(t *testing.T, target string, seeds []corpusSeed) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s.data)
		if err := os.WriteFile(filepath.Join(dir, s.name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWriteDeltaFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzDecodeTreeDelta from the in-code seeds. Gated behind an
// env var: run FLOWTREE_WRITE_CORPUS=1 go test ./internal/flowtree -run
// TestWriteDeltaFuzzCorpus after changing the v3 format or the seeds.
func TestWriteDeltaFuzzCorpus(t *testing.T) {
	if os.Getenv("FLOWTREE_WRITE_CORPUS") == "" {
		t.Skip("set FLOWTREE_WRITE_CORPUS=1 to rewrite the seed corpus")
	}
	writeFuzzCorpus(t, "FuzzDecodeTreeDelta", deltaFuzzSeeds(t))
}

// TestWriteTreeFuzzCorpus is TestWriteDeltaFuzzCorpus for FuzzDecodeTree,
// behind the same env var.
func TestWriteTreeFuzzCorpus(t *testing.T) {
	if os.Getenv("FLOWTREE_WRITE_CORPUS") == "" {
		t.Skip("set FLOWTREE_WRITE_CORPUS=1 to rewrite the seed corpus")
	}
	writeFuzzCorpus(t, "FuzzDecodeTree", fuzzTreeSeeds(t))
}
