package flowtree

// Differential property suite for the arena rewrite: every randomized op
// sequence is driven through the slab-backed Tree and the pointer-based
// refTree (reftree_test.go) side by side, and after every op the two must
// agree EXACTLY — node sets, own and aggregate counters, entry lists, and
// all three wire encodings byte for byte. Exactness (not just invariants)
// is possible because both implementations share the deterministic fold
// order, so compression folds identical node sets.

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

// diffPair is one arena/reference tree pair under differential test.
type diffPair struct {
	a *Tree
	r *refTree
}

func newDiffPair(t *testing.T, budget int, opts ...Option) *diffPair {
	t.Helper()
	a, err := New(budget, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return &diffPair{a: a, r: newRefTree(budget, a.stepBits, a.score)}
}

// assertEqual pins the arena tree to the reference exactly.
func (p *diffPair) assertEqual(t *testing.T, ctx string) {
	t.Helper()
	if p.a.Len() != p.r.len() {
		t.Fatalf("%s: node count %d (index has %d), reference %d", ctx, p.a.Len(), len(p.a.index()), p.r.len())
	}
	if p.a.Total() != p.r.total() {
		t.Fatalf("%s: total %+v, reference %+v", ctx, p.a.Total(), p.r.total())
	}
	// Node-for-node: every reference node exists in the arena at the same
	// depth with the same own and aggregate counters (with equal counts,
	// this also rules out arena-only nodes).
	idx := p.a.index()
	for key, rn := range p.r.nodes {
		ai, ok := idx[key]
		if !ok {
			t.Fatalf("%s: reference node %v missing from arena", ctx, key)
		}
		an := &p.a.slab[ai]
		if an.own != rn.own || an.agg != rn.agg {
			t.Fatalf("%s: node %v counters diverge: arena %+v/%+v, reference %+v/%+v",
				ctx, key, an.own, an.agg, rn.own, rn.agg)
		}
		if an.depth != rn.depth {
			t.Fatalf("%s: node %v depth %d, reference %d", ctx, key, an.depth, rn.depth)
		}
	}
	// Entry lists and every wire encoding, byte for byte. The reference
	// encoders rebuild frames from the plain entry list through the shared
	// low-level appenders, so agreement pins the arena's slab-order encode
	// paths (including the cached sorted entries) against first principles.
	re := p.r.entries()
	ae := p.a.Entries()
	if len(ae) != len(re) {
		t.Fatalf("%s: %d entries, reference %d", ctx, len(ae), len(re))
	}
	for i := range ae {
		if ae[i] != re[i] {
			t.Fatalf("%s: entry %d is %+v, reference %+v", ctx, i, ae[i], re[i])
		}
	}
	v1, err := p.a.AppendBinaryV(nil, WireV1)
	if err != nil {
		t.Fatalf("%s: v1 encode: %v", ctx, err)
	}
	if !bytes.Equal(v1, refEncodeV1(re, p.a.stepBits)) {
		t.Fatalf("%s: v1 bytes diverge from reference", ctx)
	}
	v2 := p.a.AppendBinary(nil)
	if !bytes.Equal(v2, refEncodeV2(re, p.a.stepBits)) {
		t.Fatalf("%s: v2 bytes diverge from reference", ctx)
	}
	if got, want := p.a.SizeBytes(), uint64(len(v2)); got != want {
		t.Fatalf("%s: SizeBytes %d, encoded length %d", ctx, got, want)
	}
	if got, want := p.a.DeltaHash(), refDeltaHash(re, p.a.stepBits); got != want {
		t.Fatalf("%s: DeltaHash %#x, reference %#x", ctx, got, want)
	}
}

// genRecords returns deterministic skewed records for a sequence step.
func diffRecords(t *testing.T, seed int64, n int) []flow.Record {
	t.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: seed, Skew: 1.3})
	if err != nil {
		t.Fatal(err)
	}
	return g.Records(n)
}

// generalize walks a key up its canonical chain a few steps.
func generalize(key flow.Key, steps int, stepBits uint8) flow.Key {
	for i := 0; i < steps; i++ {
		up, ok := key.GeneralizeStep(stepBits)
		if !ok {
			break
		}
		key = up
	}
	return key
}

// TestDifferentialOpSequences drives randomized op sequences through both
// implementations: Add, AddBatch, AddCounters at generalized keys, Merge,
// MergeAll, Diff, CompressTo, Clone, SetBudget, full encode/decode
// replacement, and v3 delta frames against snapshotted bases. Several
// seeds × budgets, exact equality after every op.
func TestDifferentialOpSequences(t *testing.T) {
	configs := []struct {
		name   string
		budget int
		opts   []Option
	}{
		{"unbudgeted", 0, nil},
		{"budget=256", 256, nil},
		{"budget=64/step=16", 64, []Option{WithStepBits(16)}},
		{"budget=128/nonmonotone", 128, []Option{WithScore(func(_, b, f uint64) uint64 {
			if f == 0 {
				return 0
			}
			return b / f
		})}},
	}
	ops := 120
	if testing.Short() {
		ops = 40
	}
	for _, cfg := range configs {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", cfg.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				p := newDiffPair(t, cfg.budget, cfg.opts...)
				// Delta base snapshot: arena tree plus reference entries,
				// refreshed occasionally by the delta op.
				var baseA *Tree
				var baseRE []Entry
				for op := 0; op < ops; op++ {
					kind := rng.Intn(10)
					ctx := fmt.Sprintf("op %d (kind %d)", op, kind)
					switch kind {
					case 0: // single record
						rec := diffRecords(t, rng.Int63n(1000), 1)[0]
						p.a.Add(rec)
						p.r.add(rec)
					case 1: // batch (exercises the deferred-aggregation path)
						recs := diffRecords(t, rng.Int63n(1000), 1+rng.Intn(300))
						p.a.AddBatch(recs)
						p.r.addBatch(recs)
					case 2: // weight at a generalized key
						recs := diffRecords(t, rng.Int63n(1000), 1)
						key := generalize(recs[0].Key, rng.Intn(6), p.a.stepBits)
						c := flow.Counters{Packets: uint64(rng.Intn(50)), Bytes: uint64(rng.Intn(5000)), Flows: 1}
						p.a.AddCounters(key, c)
						p.r.addWeighted(key, c)
					case 3: // merge one or several freshly built trees
						n := 1 + rng.Intn(3)
						arenas := make([]*Tree, n)
						refs := make([]*refTree, n)
						for i := range arenas {
							recs := diffRecords(t, rng.Int63n(1000), 1+rng.Intn(80))
							oa, err := New(0, WithStepBits(p.a.stepBits))
							if err != nil {
								t.Fatal(err)
							}
							oa.AddBatch(recs)
							or := newRefTree(0, p.a.stepBits, p.a.score)
							or.addBatch(recs)
							arenas[i] = oa
							refs[i] = or
						}
						if n == 1 && rng.Intn(2) == 0 {
							if err := p.a.Merge(arenas[0]); err != nil {
								t.Fatal(err)
							}
						} else if err := p.a.MergeAll(arenas...); err != nil {
							t.Fatal(err)
						}
						p.r.mergeAll(refs...)
					case 4: // subtract a small tree
						recs := diffRecords(t, rng.Int63n(1000), 1+rng.Intn(40))
						oa, err := New(0, WithStepBits(p.a.stepBits))
						if err != nil {
							t.Fatal(err)
						}
						oa.AddBatch(recs)
						or := newRefTree(0, p.a.stepBits, p.a.score)
						or.addBatch(recs)
						if err := p.a.Diff(oa); err != nil {
							t.Fatal(err)
						}
						p.r.diff(or)
					case 5: // explicit compression (both fold strategies over time)
						if p.a.Len() > 2 {
							target := 1 + rng.Intn(p.a.Len())
							p.a.CompressTo(target)
							p.r.compressTo(target)
						}
					case 6: // clone: continue on the copy, original must survive intact
						ca, cr := p.a.Clone(), p.r.clone()
						old := *p
						p.a, p.r = ca, cr
						old.assertEqual(t, ctx+" (clone source)")
					case 7: // budget change compresses immediately
						if cfg.budget > 0 {
							b := 32 + rng.Intn(cfg.budget)
							if err := p.a.SetBudget(b); err != nil {
								t.Fatal(err)
							}
							p.r.budget = b
							p.r.maybeCompress()
						}
					case 8: // wire round trip replaces the pair (post-Decode state)
						version := byte(WireV1)
						if rng.Intn(2) == 0 {
							version = WireV2
						}
						wire, err := p.a.AppendBinaryV(nil, version)
						if err != nil {
							t.Fatal(err)
						}
						budget := 0
						if rng.Intn(2) == 0 {
							budget = 64 + rng.Intn(256)
						}
						dec, err := Decode(wire, budget, WithScore(p.a.score))
						if err != nil {
							t.Fatalf("%s: decode: %v", ctx, err)
						}
						p.a = dec
						p.r = refFromEntries(p.r.entries(), budget, p.a.stepBits, p.a.score)
					case 9: // v3 delta against the snapshotted base
						if baseA == nil {
							baseA = p.a.Clone()
							baseRE = p.r.entries()
							continue
						}
						delta, err := p.a.AppendDelta(nil, baseA)
						if err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(delta, refAppendDelta(p.r.entries(), baseRE, p.a.stepBits)) {
							t.Fatalf("%s: v3 delta bytes diverge from reference", ctx)
						}
						dec, err := DecodeDelta(delta, baseA, 0, WithScore(p.a.score))
						if err != nil {
							t.Fatalf("%s: delta apply: %v", ctx, err)
						}
						applied := &diffPair{a: dec, r: refFromEntries(p.r.entries(), 0, p.a.stepBits, p.a.score)}
						applied.assertEqual(t, ctx+" (delta applied)")
						baseA = p.a.Clone()
						baseRE = p.r.entries()
					}
					p.assertEqual(t, ctx)
				}
			})
		}
	}
}

// TestDifferentialSelfMerge pins the self-merge edge case: merging a tree
// into itself doubles every weight deterministically on both
// implementations (the arena streams the source slab by value, so growth
// during insertion must not corrupt the iteration).
func TestDifferentialSelfMerge(t *testing.T) {
	p := newDiffPair(t, 0)
	p.a.AddBatch(diffRecords(t, 11, 500))
	p.r.addBatch(diffRecords(t, 11, 500))
	if err := p.a.MergeAll(p.a); err != nil {
		t.Fatal(err)
	}
	// The reference walks its own pointer graph; snapshot first so the
	// walk sees the pre-merge state like the arena's by-value iteration.
	p.r.mergeAll(p.r.clone())
	p.assertEqual(t, "self-merge")
}

// TestDifferentialCompressToRebuildAndSequential forces both CompressTo
// execution strategies (majority rebuild, minority sequential) explicitly
// on a large tree and demands exact equality, including the
// free-list-reusing ingest that follows.
func TestDifferentialCompressToRebuildAndSequential(t *testing.T) {
	for _, frac := range []float64{0.9, 0.6, 0.3, 0.05} {
		p := newDiffPair(t, 0)
		recs := diffRecords(t, 23, 20000)
		p.a.AddBatch(recs)
		p.r.addBatch(recs)
		target := int(float64(p.a.Len()) * frac)
		p.a.CompressTo(target)
		p.r.compressTo(target)
		p.assertEqual(t, fmt.Sprintf("compress frac=%.2f", frac))
		// Ingest after the fold: the arena reuses freed slots (sequential
		// path) or the compacted slab (rebuild path); the reference just
		// allocates. They must still agree exactly.
		more := diffRecords(t, 29, 3000)
		p.a.AddBatch(more)
		p.r.addBatch(more)
		p.assertEqual(t, fmt.Sprintf("post-compress ingest frac=%.2f", frac))
	}
}

// TestEntriesCacheInvalidation pins the cached sorted-entry list against
// every mutation class: the cache must serve repeated exports unchanged and
// must never survive a mutation stale.
func TestEntriesCacheInvalidation(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	tr.AddBatch(diffRecords(t, 31, 2000))

	fresh := func(ctx string) {
		t.Helper()
		// Rebuild the truth from the slab, bypassing the cache.
		valid := tr.entriesOK
		tr.entriesOK = false
		want := append([]Entry(nil), tr.wireEntries()...)
		tr.entriesOK = valid
		got := tr.Entries()
		if len(got) != len(want) {
			t.Fatalf("%s: cache serves %d entries, slab has %d", ctx, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: cached entry %d is %+v, slab says %+v", ctx, i, got[i], want[i])
			}
		}
	}

	// Repeated exports of an unchanged tree serve the same backing array.
	_ = tr.Entries()
	if !tr.entriesOK {
		t.Fatal("cache not populated by Entries")
	}
	first := &tr.wireEntries()[0]
	if second := &tr.wireEntries()[0]; first != second {
		t.Fatal("unchanged tree rebuilt its entry cache")
	}
	// Entries() must hand out copies, not the cache itself.
	pub := tr.Entries()
	if &pub[0] == first {
		t.Fatal("Entries returned the internal cache")
	}

	mutations := []struct {
		name string
		do   func()
	}{
		{"Add", func() { tr.Add(diffRecords(t, 37, 1)[0]) }},
		{"AddBatch", func() { tr.AddBatch(diffRecords(t, 41, 50)) }},
		{"AddCounters", func() {
			tr.AddCounters(generalize(diffRecords(t, 43, 1)[0].Key, 3, tr.stepBits), flow.Counters{Bytes: 10, Flows: 1})
		}},
		{"Merge", func() {
			o, _ := New(0)
			o.AddBatch(diffRecords(t, 47, 30))
			if err := tr.Merge(o); err != nil {
				t.Fatal(err)
			}
		}},
		{"Diff", func() {
			o, _ := New(0)
			o.AddBatch(diffRecords(t, 41, 20))
			if err := tr.Diff(o); err != nil {
				t.Fatal(err)
			}
		}},
		{"CompressTo", func() { tr.CompressTo(tr.Len() * 3 / 4) }},
		{"SetBudget", func() {
			if err := tr.SetBudget(tr.Len() / 2); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, m := range mutations {
		_ = tr.Entries() // warm the cache
		m.do()
		fresh(m.name)
	}

	// Clone carries a valid cache without sharing it.
	_ = tr.Entries()
	cp := tr.Clone()
	if !cp.entriesOK {
		t.Fatal("clone dropped a valid entry cache")
	}
	if len(cp.entries) > 0 && len(tr.entries) > 0 && &cp.entries[0] == &tr.entries[0] {
		t.Fatal("clone shares the entry cache backing array")
	}
	cp.Add(diffRecords(t, 53, 1)[0])
	if cp.entriesOK {
		t.Fatal("mutating the clone left its cache valid")
	}
	if !tr.entriesOK {
		t.Fatal("mutating the clone dirtied the original's cache")
	}
}
