package flowtree_test

import (
	"fmt"

	"megadata/internal/flow"
	"megadata/internal/flowtree"
)

// Example demonstrates the core Flowtree lifecycle: ingest flows, query at
// any generalization level, merge two sites, and compress under a budget.
func Example() {
	mustIP := func(s string) flow.IPv4 {
		ip, err := flow.ParseIPv4(s)
		if err != nil {
			panic(err)
		}
		return ip
	}
	berlin, _ := flowtree.New(0)
	paris, _ := flowtree.New(0)
	berlin.Add(flow.Record{
		Key:     flow.Exact(flow.ProtoTCP, mustIP("10.1.2.3"), mustIP("192.168.1.5"), 40000, 443),
		Packets: 10, Bytes: 5000,
	})
	paris.Add(flow.Record{
		Key:     flow.Exact(flow.ProtoTCP, mustIP("10.1.9.9"), mustIP("192.168.1.5"), 41000, 443),
		Packets: 2, Bytes: 1000,
	})

	// Merge across locations (Table II: Merge), then query the shared
	// /16 source prefix.
	if err := berlin.Merge(paris); err != nil {
		panic(err)
	}
	q := flow.Key{
		SrcIP: mustIP("10.1.0.0"), SrcPrefix: 16,
		WildProto: true, WildSrcPort: true, WildDstPort: true,
	}
	fmt.Printf("10.1.0.0/16 carries %d bytes in %d flows\n",
		berlin.Query(q).Bytes, berlin.Query(q).Flows)

	// Compress to a tiny budget: totals survive, attribution coarsens.
	berlin.CompressTo(4)
	fmt.Printf("after compress: %d nodes, total still %d bytes\n",
		berlin.Len(), berlin.Total().Bytes)
	// Output:
	// 10.1.0.0/16 carries 6000 bytes in 2 flows
	// after compress: 4 nodes, total still 6000 bytes
}
