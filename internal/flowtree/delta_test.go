package flowtree

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

// deltaTestTree builds an unbudgeted tree over n generated records.
func deltaTestTree(t testing.TB, seed int64, n int) *Tree {
	t.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: seed, Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	tr.AddBatch(g.Records(n))
	return tr
}

// TestDeltaRoundTripRandomMutations drives a sender tree through randomized
// epoch-to-epoch mutation sequences — adds of fresh flows, weight bumps on
// existing entries, compression folds that evict cold subtrees — and checks
// the delta contract at every epoch: applying the v3 frame onto the
// receiver's retained copy of the previous epoch reconstructs a tree whose
// full v2 encoding is byte-for-byte the sender's.
func TestDeltaRoundTripRandomMutations(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		rng := rand.New(rand.NewSource(seed))
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: seed + 100, Skew: 1.3})
		if err != nil {
			t.Fatal(err)
		}
		cur, err := New(0)
		if err != nil {
			t.Fatal(err)
		}
		cur.AddBatch(g.Records(300))
		// The receiver starts from a full-frame decode of epoch 0.
		recon, err := Decode(cur.AppendBinary(nil), 0)
		if err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 12; epoch++ {
			prev := cur.Clone()
			// Adds: a batch of fresh flows from the generator stream.
			cur.AddBatch(g.Records(10 + rng.Intn(40)))
			// Weight bumps on random existing entries.
			entries := cur.Entries()
			for i := 0; i < 1+rng.Intn(8); i++ {
				e := entries[rng.Intn(len(entries))]
				cur.AddCounters(e.Key, flow.Counters{
					Packets: uint64(1 + rng.Intn(100)),
					Bytes:   uint64(1 + rng.Intn(10000)),
					Flows:   1,
				})
			}
			// Folds/evictions: occasionally compress away a slice of the
			// tree, coarsening cold flows into their ancestors.
			if rng.Intn(3) == 0 {
				cur.CompressTo(cur.Len() - cur.Len()/4)
			}

			frame, err := cur.AppendDelta(nil, prev)
			if err != nil {
				t.Fatalf("seed %d epoch %d: AppendDelta: %v", seed, epoch, err)
			}
			recon, err = DecodeDelta(frame, recon, 0)
			if err != nil {
				t.Fatalf("seed %d epoch %d: DecodeDelta: %v", seed, epoch, err)
			}
			want := cur.AppendBinary(nil)
			got := recon.AppendBinary(nil)
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d epoch %d: delta reconstruction encodes %d bytes != sender's %d-byte v2 frame",
					seed, epoch, len(got), len(want))
			}
			if recon.Total() != cur.Total() {
				t.Fatalf("seed %d epoch %d: totals diverged: %+v vs %+v", seed, epoch, recon.Total(), cur.Total())
			}
		}
	}
}

// TestDeltaSmallerThanFullOnLowChurn pins the point of v3: a low-churn
// epoch's delta frame is much smaller than the full v2 frame.
func TestDeltaSmallerThanFullOnLowChurn(t *testing.T) {
	cur := deltaTestTree(t, 9, 2000)
	prev := cur.Clone()
	// Touch a handful of entries only.
	entries := cur.Entries()
	for i := 0; i < 5; i++ {
		cur.AddCounters(entries[i*7].Key, flow.Counters{Packets: 1, Bytes: 99, Flows: 1})
	}
	frame, err := cur.AppendDelta(nil, prev)
	if err != nil {
		t.Fatal(err)
	}
	full := cur.AppendBinary(nil)
	if len(frame)*2 > len(full) {
		t.Fatalf("low-churn delta is %d bytes, full frame %d — delta should be under half", len(frame), len(full))
	}
}

// TestDeltaFallbackBoundary pins AppendDeltaOrFull's churn threshold: churn
// at or under maxChurn emits a delta, churn above it (or a missing base)
// emits a full v2 frame that plain Decode accepts.
func TestDeltaFallbackBoundary(t *testing.T) {
	const n = 100
	mk := func() *Tree {
		tr, err := New(0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			tr.AddCounters(flow.Exact(6, flow.IPv4(0x0a000000+uint32(i)), 0xc0a80001, 1000, 80),
				flow.Counters{Packets: 1, Bytes: 100, Flows: 1})
		}
		return tr
	}
	cur := mk()
	base := cur.Clone()
	// Mutate exactly 10 of the n exact-flow entries: churn = 10 changed.
	for i := 0; i < 10; i++ {
		cur.AddCounters(flow.Exact(6, flow.IPv4(0x0a000000+uint32(i)), 0xc0a80001, 1000, 80),
			flow.Counters{Packets: 5, Bytes: 500, Flows: 1})
	}
	churn := 10.0 / float64(len(cur.wireEntries()))

	if frame, isDelta := cur.AppendDeltaOrFull(nil, base, churn*1.01); !isDelta {
		t.Fatal("churn just under threshold must emit a delta")
	} else if frame[4] != WireV3 {
		t.Fatalf("delta frame has version %d", frame[4])
	}
	frame, isDelta := cur.AppendDeltaOrFull(nil, base, churn*0.99)
	if isDelta {
		t.Fatal("churn above threshold must fall back to a full frame")
	}
	if frame[4] != WireV2 {
		t.Fatalf("fallback frame has version %d", frame[4])
	}
	if _, err := Decode(frame, 0); err != nil {
		t.Fatalf("fallback frame must be plain-decodable: %v", err)
	}
	// No base at all: always a full frame.
	if _, isDelta := cur.AppendDeltaOrFull(nil, nil, 0.5); isDelta {
		t.Fatal("nil base must emit a full frame")
	}
	// maxChurn <= 0 disables the fallback even at 100% churn.
	fresh := deltaTestTree(t, 77, 50)
	if _, isDelta := fresh.AppendDeltaOrFull(nil, base, 0); !isDelta {
		t.Fatal("maxChurn 0 must never fall back")
	}
}

// TestDecodeDeltaErrors covers the failure modes a federated receiver must
// surface rather than absorb.
func TestDecodeDeltaErrors(t *testing.T) {
	cur := deltaTestTree(t, 11, 200)
	base := cur.Clone()
	cur.AddCounters(cur.Entries()[0].Key, flow.Counters{Packets: 1, Bytes: 1, Flows: 1})
	frame, err := cur.AppendDelta(nil, base)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeDelta(frame, nil, 0); !errors.Is(err, ErrDeltaBase) {
		t.Errorf("nil base: err = %v, want ErrDeltaBase", err)
	}
	wrong := deltaTestTree(t, 12, 200)
	if _, err := DecodeDelta(frame, wrong, 0); !errors.Is(err, ErrDeltaBase) {
		t.Errorf("mismatched base: err = %v, want ErrDeltaBase", err)
	}
	if _, err := Decode(frame, 0); !errors.Is(err, ErrCodec) {
		t.Errorf("plain Decode of v3: err = %v, want ErrCodec", err)
	}
	if _, err := DecodeDelta(frame[:len(frame)-1], base, 0); err == nil {
		t.Error("truncated delta frame must error")
	}
	if _, err := DecodeDelta(frame[:wireHeaderSize+3], base, 0); !errors.Is(err, ErrCodec) {
		t.Error("short delta body must be ErrCodec")
	}
	// Step-bits mismatch between frame and base.
	stepped, err := New(0, WithStepBits(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeDelta(frame, stepped, 0); !errors.Is(err, ErrDeltaBase) {
		t.Errorf("step mismatch: err = %v, want ErrDeltaBase", err)
	}
	// v1/v2 frames pass through DecodeDelta unchanged (back-compat), base
	// ignored even when wrong.
	full := cur.AppendBinary(nil)
	tr, err := DecodeDelta(full, wrong, 0)
	if err != nil {
		t.Fatalf("v2 through DecodeDelta: %v", err)
	}
	if tr.Total() != cur.Total() {
		t.Error("v2 through DecodeDelta lost weight")
	}
	v1, err := cur.AppendBinaryV(nil, WireV1)
	if err != nil {
		t.Fatal(err)
	}
	if tr, err := DecodeDelta(v1, nil, 0); err != nil || tr.Total() != cur.Total() {
		t.Errorf("v1 through DecodeDelta: %v", err)
	}
}

// TestDeltaHashMatchesEncoding: trees with identical wire content hash
// equal regardless of construction order; any weight difference changes the
// hash.
func TestDeltaHashMatchesEncoding(t *testing.T) {
	a := deltaTestTree(t, 21, 400)
	b, err := Decode(a.AppendBinary(nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.DeltaHash() != b.DeltaHash() {
		t.Error("decode of a tree's encoding must hash equal")
	}
	if c := a.Clone(); c.DeltaHash() != a.DeltaHash() {
		t.Error("clone must hash equal")
	}
	b.AddCounters(b.Entries()[0].Key, flow.Counters{Packets: 1})
	if a.DeltaHash() == b.DeltaHash() {
		t.Error("weight bump must change the hash")
	}
}
