package flowtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"megadata/internal/flow"
)

// # Wire format
//
// A Flowtree travels as a 6-byte fixed header — magic "FLWT", a version
// byte, and the generalization step — followed by a version-specific body
// carrying every node with non-zero own weight. This is what data stores
// exchange when exporting Flowtrees across the hierarchy (Figure 5, step 3)
// and what replication ships, so its density is exactly the WAN bytes the
// system exists to save.
//
// Version 1 (legacy, fixed width):
//
//	header | uint64 count | count * (16-byte key + 3 * uint64 counters)
//
// 40 bytes per node regardless of content. Emitted only on request
// (AppendBinaryV with WireV1); always accepted by Decode for back-compat
// with stored blobs and old peers.
//
// Version 2 (current, compact):
//
//	header | uvarint count | count * entry
//
// Entries are sorted by the deterministic key order (SrcIP, DstIP, SrcPort,
// DstPort, Proto, prefixes, wildcard bits — keyLess), keys normalized. Each
// entry is a flags byte naming the key fields that differ from the previous
// entry, the changed fields only — SrcIP as a uvarint delta against the
// previous entry's SrcIP (ascending in the sort order, so deltas stay
// small), the rest as uvarint/byte absolutes — and the three counters as
// uvarints. Flow keys cluster in real traces (few /8s, shared ports), so
// most entries ship a handful of bytes instead of 40. AppendBinary and
// SizeBytes both speak v2; Decode dispatches on the version byte.
//
// Version 3 (delta, epoch-to-epoch):
//
//	header | 8-byte base fingerprint | uvarint changed count |
//	changed entries | uvarint removed count | removed keys
//
// A v3 frame carries the difference between this tree and a base tree the
// receiver already retains (the last acked epoch). The fingerprint is
// DeltaHash of the base; the receiver verifies its retained copy matches
// before applying (ErrDeltaBase otherwise). Changed entries are added or
// re-weighted keys with their absolute counters, encoded exactly like v2
// entries (sorted keyLess, prefix-delta keys); removed keys are keys present
// in the base but absent now, encoded as v2 key diffs without counters.
// Both lists are strictly sorted. Decoding applies the delta onto the
// retained base and yields the full tree — see AppendDelta / DecodeDelta in
// delta.go. Senders fall back to a full v2 frame when churn is too high for
// the delta to pay or no acked base exists (AppendDeltaOrFull); plain
// Decode rejects v3 frames because they are meaningless without the base.
const (
	_wireMagic = 0x464C5754 // "FLWT"
	// WireV1 is the legacy fixed-width wire format (40 bytes/node).
	WireV1 = 1
	// WireV2 is the compact sorted prefix-delta wire format.
	WireV2 = 2
	// WireV3 is the epoch-delta wire format (relative to a retained base).
	WireV3 = 3
	// wireHeaderSize is magic + version + stepBits, shared by all versions.
	wireHeaderSize = 6
	// nodeWireSizeV1 is 16 bytes of key + 3*8 bytes of counters.
	nodeWireSizeV1 = 16 + 24
)

// v2 entry flags: which key fields differ from the previous entry.
const (
	v2FlagSrcIP    = 1 << 0 // uvarint delta vs previous SrcIP
	v2FlagDstIP    = 1 << 1 // uvarint absolute
	v2FlagSrcPort  = 1 << 2 // uvarint absolute
	v2FlagDstPort  = 1 << 3 // uvarint absolute
	v2FlagProto    = 1 << 4 // one byte
	v2FlagPrefixes = 1 << 5 // two bytes: SrcPrefix, DstPrefix
	v2FlagWild     = 1 << 6 // one byte: bit0 proto, bit1 sport, bit2 dport
	v2FlagReserved = 1 << 7 // must be zero
)

// ErrCodec is returned for malformed Flowtree wire data.
var ErrCodec = errors.New("flowtree: malformed wire data")

// appendHeader emits the version-independent 6-byte header.
func (t *Tree) appendHeader(dst []byte, version byte) []byte {
	var hdr [wireHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], _wireMagic)
	hdr[4] = version
	hdr[5] = t.stepBits
	return append(dst, hdr[:]...)
}

// AppendBinary serializes the tree's weighted nodes in the current wire
// version (WireV2).
func (t *Tree) AppendBinary(dst []byte) []byte {
	out, err := t.AppendBinaryV(dst, WireV2)
	if err != nil {
		// WireV2 is always valid; this is unreachable.
		panic(err)
	}
	return out
}

// AppendBinaryV serializes the tree in an explicit wire version: WireV2 for
// new exports, WireV1 to interoperate with peers that predate the compact
// codec.
func (t *Tree) AppendBinaryV(dst []byte, version byte) ([]byte, error) {
	switch version {
	case WireV1:
		return t.appendBinaryV1(dst), nil
	case WireV2:
		return t.appendBinaryV2(dst), nil
	default:
		return nil, fmt.Errorf("flowtree: unknown wire version %d", version)
	}
}

func (t *Tree) appendBinaryV1(dst []byte) []byte {
	entries := t.wireEntries()
	dst = t.appendHeader(dst, WireV1)
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], uint64(len(entries)))
	dst = append(dst, cnt[:]...)
	for _, e := range entries {
		dst = e.Key.AppendBinary(dst)
		var c [24]byte
		binary.BigEndian.PutUint64(c[0:], e.Counters.Packets)
		binary.BigEndian.PutUint64(c[8:], e.Counters.Bytes)
		binary.BigEndian.PutUint64(c[16:], e.Counters.Flows)
		dst = append(dst, c[:]...)
	}
	return dst
}

// v2KeyDiff computes the flags byte for encoding key against prev.
func v2KeyDiff(prev, key flow.Key) byte {
	var flags byte
	if key.SrcIP != prev.SrcIP {
		flags |= v2FlagSrcIP
	}
	if key.DstIP != prev.DstIP {
		flags |= v2FlagDstIP
	}
	if key.SrcPort != prev.SrcPort {
		flags |= v2FlagSrcPort
	}
	if key.DstPort != prev.DstPort {
		flags |= v2FlagDstPort
	}
	if key.Proto != prev.Proto {
		flags |= v2FlagProto
	}
	if key.SrcPrefix != prev.SrcPrefix || key.DstPrefix != prev.DstPrefix {
		flags |= v2FlagPrefixes
	}
	if key.WildProto != prev.WildProto || key.WildSrcPort != prev.WildSrcPort ||
		key.WildDstPort != prev.WildDstPort {
		flags |= v2FlagWild
	}
	return flags
}

func wildByte(k flow.Key) byte {
	var w byte
	if k.WildProto {
		w |= 1
	}
	if k.WildSrcPort {
		w |= 2
	}
	if k.WildDstPort {
		w |= 4
	}
	return w
}

// v2AppendKey emits one key delta-encoded against prev: the flags byte
// naming the differing fields, then the changed fields only. Shared by v2
// entries and the v3 removed-key list.
func v2AppendKey(dst []byte, prev, k flow.Key) []byte {
	flags := v2KeyDiff(prev, k)
	dst = append(dst, flags)
	if flags&v2FlagSrcIP != 0 {
		dst = binary.AppendUvarint(dst, uint64(k.SrcIP-prev.SrcIP))
	}
	if flags&v2FlagDstIP != 0 {
		dst = binary.AppendUvarint(dst, uint64(k.DstIP))
	}
	if flags&v2FlagSrcPort != 0 {
		dst = binary.AppendUvarint(dst, uint64(k.SrcPort))
	}
	if flags&v2FlagDstPort != 0 {
		dst = binary.AppendUvarint(dst, uint64(k.DstPort))
	}
	if flags&v2FlagProto != 0 {
		dst = append(dst, byte(k.Proto))
	}
	if flags&v2FlagPrefixes != 0 {
		dst = append(dst, k.SrcPrefix, k.DstPrefix)
	}
	if flags&v2FlagWild != 0 {
		dst = append(dst, wildByte(k))
	}
	return dst
}

// v2AppendEntry emits one v2 entry delta-encoded against prev. It is the
// single source of truth for the entry layout: the encoder and the exact
// size computation (WireSizeBytes) both go through it.
func v2AppendEntry(dst []byte, prev flow.Key, e Entry) []byte {
	dst = v2AppendKey(dst, prev, e.Key)
	dst = binary.AppendUvarint(dst, e.Counters.Packets)
	dst = binary.AppendUvarint(dst, e.Counters.Bytes)
	dst = binary.AppendUvarint(dst, e.Counters.Flows)
	return dst
}

func (t *Tree) appendBinaryV2(dst []byte) []byte {
	entries := t.wireEntries()
	dst = t.appendHeader(dst, WireV2)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	var prev flow.Key
	for _, e := range entries {
		dst = v2AppendEntry(dst, prev, e)
		prev = e.Key
	}
	return dst
}

// uvarintLen is the encoded size of x as a uvarint.
func uvarintLen(x uint64) uint64 {
	n := uint64(1)
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// SizeBytes returns the serialized size in the current wire version
// (WireV2) without serializing — the byte volume metered by simnet when the
// tree is shipped, and always equal to len(AppendBinary(nil)). Exactness
// requires the same sorted-delta walk as encoding, so the cost is
// O(n log n) in the tree's weighted nodes (budget-bounded on budgeted
// trees); callers that only need a footprint estimate on a hot path can
// use Len()*bytes-per-node instead.
func (t *Tree) SizeBytes() uint64 {
	n, err := t.WireSizeBytes(WireV2)
	if err != nil {
		panic(err) // WireV2 is always valid; unreachable.
	}
	return n
}

// WireSizeBytes returns the serialized size in an explicit wire version,
// equal to len(AppendBinaryV(nil, version)) byte for byte.
func (t *Tree) WireSizeBytes(version byte) (uint64, error) {
	switch version {
	case WireV1:
		n := uint64(len(t.wireEntries()))
		return wireHeaderSize + 8 + n*nodeWireSizeV1, nil
	case WireV2:
		entries := t.wireEntries()
		n := wireHeaderSize + uvarintLen(uint64(len(entries)))
		// Measure by encoding each entry into a reused scratch buffer:
		// exact by construction, one small allocation per call. A v2
		// entry is at most 1 flags + 5+5+3+3 key varints + 4 fixed key
		// bytes + 3*10 counter varints = 51 bytes.
		scratch := make([]byte, 0, 64)
		var prev flow.Key
		for _, e := range entries {
			n += uint64(len(v2AppendEntry(scratch[:0], prev, e)))
			prev = e.Key
		}
		return n, nil
	default:
		return 0, fmt.Errorf("flowtree: unknown wire version %d", version)
	}
}

// Decode reconstructs a tree from wire data produced by AppendBinary /
// AppendBinaryV; both wire versions are accepted (the version byte
// dispatches). The result uses the supplied budget and options; the
// generalization step is taken from the wire header. Decoding defers
// aggregate propagation: all own weights land first and the aggregates are
// rebuilt with one bottom-up pass before the budget is enforced.
func Decode(src []byte, budget int, opts ...Option) (*Tree, error) {
	if len(src) < wireHeaderSize {
		return nil, fmt.Errorf("%w: short header", ErrCodec)
	}
	if binary.BigEndian.Uint32(src[0:]) != _wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	version := src[4]
	stepBits := src[5]
	body := src[wireHeaderSize:]
	opts = append([]Option{WithStepBits(stepBits)}, opts...)
	t, err := New(budget, opts...)
	if err != nil {
		return nil, err
	}
	switch version {
	case WireV1:
		err = t.decodeV1(body)
	case WireV2:
		err = t.decodeV2(body)
	case WireV3:
		return nil, fmt.Errorf("%w: v3 is a delta frame and needs the retained base (use DecodeDelta)", ErrCodec)
	default:
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, version)
	}
	if err != nil {
		return nil, err
	}
	t.recomputeAgg(rootIdx)
	t.maybeCompress()
	return t, nil
}

func (t *Tree) decodeV1(src []byte) error {
	if len(src) < 8 {
		return fmt.Errorf("%w: short header", ErrCodec)
	}
	count := binary.BigEndian.Uint64(src)
	src = src[8:]
	if uint64(len(src)) != count*nodeWireSizeV1 {
		return fmt.Errorf("%w: body is %d bytes, want %d", ErrCodec, len(src), count*nodeWireSizeV1)
	}
	for i := uint64(0); i < count; i++ {
		key, n, err := flow.KeyFromBinary(src)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCodec, err)
		}
		src = src[n:]
		c := flow.Counters{
			Packets: binary.BigEndian.Uint64(src[0:]),
			Bytes:   binary.BigEndian.Uint64(src[8:]),
			Flows:   binary.BigEndian.Uint64(src[16:]),
		}
		src = src[24:]
		ni := t.ensure(key)
		t.slab[ni].own.Add(c)
	}
	return nil
}

// v2Reader consumes the v2 body with bounds checking.
type v2Reader struct {
	src []byte
	err error
}

func (r *v2Reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.src)
	if n <= 0 {
		r.err = fmt.Errorf("%w: truncated or oversized uvarint", ErrCodec)
		return 0
	}
	r.src = r.src[n:]
	return v
}

func (r *v2Reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.src) == 0 {
		r.err = fmt.Errorf("%w: truncated entry", ErrCodec)
		return 0
	}
	b := r.src[0]
	r.src = r.src[1:]
	return b
}

// key decodes one delta-encoded key against prev (the inverse of
// v2AppendKey), validating every field's range. On error the reader's err is
// set and the partial key is returned; callers check r.err.
func (r *v2Reader) key(prev flow.Key) flow.Key {
	flags := r.byte()
	if r.err == nil && flags&v2FlagReserved != 0 {
		r.err = fmt.Errorf("%w: reserved flag set", ErrCodec)
		return prev
	}
	k := prev
	if flags&v2FlagSrcIP != 0 {
		delta := r.uvarint()
		if r.err == nil && delta > uint64(^uint32(0))-uint64(k.SrcIP) {
			r.err = fmt.Errorf("%w: source address delta overflows", ErrCodec)
			return k
		}
		k.SrcIP += flow.IPv4(delta)
	}
	if flags&v2FlagDstIP != 0 {
		v := r.uvarint()
		if r.err == nil && v > uint64(^uint32(0)) {
			r.err = fmt.Errorf("%w: destination address out of range", ErrCodec)
			return k
		}
		k.DstIP = flow.IPv4(v)
	}
	if flags&v2FlagSrcPort != 0 {
		v := r.uvarint()
		if r.err == nil && v > uint64(^uint16(0)) {
			r.err = fmt.Errorf("%w: source port out of range", ErrCodec)
			return k
		}
		k.SrcPort = uint16(v)
	}
	if flags&v2FlagDstPort != 0 {
		v := r.uvarint()
		if r.err == nil && v > uint64(^uint16(0)) {
			r.err = fmt.Errorf("%w: destination port out of range", ErrCodec)
			return k
		}
		k.DstPort = uint16(v)
	}
	if flags&v2FlagProto != 0 {
		k.Proto = flow.Proto(r.byte())
	}
	if flags&v2FlagPrefixes != 0 {
		k.SrcPrefix = r.byte()
		k.DstPrefix = r.byte()
		if r.err == nil && (k.SrcPrefix > 32 || k.DstPrefix > 32) {
			r.err = fmt.Errorf("%w: prefix out of range (%d,%d)", ErrCodec, k.SrcPrefix, k.DstPrefix)
			return k
		}
	}
	if flags&v2FlagWild != 0 {
		w := r.byte()
		if r.err == nil && w > 7 {
			r.err = fmt.Errorf("%w: unknown wildcard bits %#x", ErrCodec, w)
			return k
		}
		k.WildProto = w&1 != 0
		k.WildSrcPort = w&2 != 0
		k.WildDstPort = w&4 != 0
	}
	return k
}

func (t *Tree) decodeV2(src []byte) error {
	r := &v2Reader{src: src}
	count := r.uvarint()
	if r.err != nil {
		return r.err
	}
	// Each entry is at least 4 bytes (flags + three counter uvarints);
	// reject counts that cannot fit before allocating anything per entry.
	if count > uint64(len(r.src))/4 {
		return fmt.Errorf("%w: %d entries cannot fit in %d bytes", ErrCodec, count, len(r.src))
	}
	var prev flow.Key
	for i := uint64(0); i < count; i++ {
		k := r.key(prev)
		c := flow.Counters{
			Packets: r.uvarint(),
			Bytes:   r.uvarint(),
			Flows:   r.uvarint(),
		}
		if r.err != nil {
			return r.err
		}
		ni := t.ensure(k.Normalized())
		t.slab[ni].own.Add(c)
		prev = k
	}
	if len(r.src) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCodec, len(r.src))
	}
	return nil
}
