package flowtree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"megadata/internal/flow"
)

// Wire format: a fixed header followed by one record per node with non-zero
// own weight. This is what data stores exchange when exporting Flowtrees
// across the hierarchy (Figure 5, step 3) and what replication ships.
const (
	_wireMagic   = 0x464C5754 // "FLWT"
	_wireVersion = 1
	// nodeWireSize is 16 bytes of key + 3*8 bytes of counters.
	nodeWireSize = 16 + 24
)

// ErrCodec is returned for malformed Flowtree wire data.
var ErrCodec = errors.New("flowtree: malformed wire data")

// AppendBinary serializes the tree's weighted nodes.
func (t *Tree) AppendBinary(dst []byte) []byte {
	entries := t.Entries()
	var hdr [14]byte
	binary.BigEndian.PutUint32(hdr[0:], _wireMagic)
	hdr[4] = _wireVersion
	hdr[5] = t.stepBits
	binary.BigEndian.PutUint64(hdr[6:], uint64(len(entries)))
	dst = append(dst, hdr[:]...)
	for _, e := range entries {
		dst = e.Key.AppendBinary(dst)
		var c [24]byte
		binary.BigEndian.PutUint64(c[0:], e.Counters.Packets)
		binary.BigEndian.PutUint64(c[8:], e.Counters.Bytes)
		binary.BigEndian.PutUint64(c[16:], e.Counters.Flows)
		dst = append(dst, c[:]...)
	}
	return dst
}

// SizeBytes returns the serialized size without serializing — the byte
// volume metered by simnet when the tree is shipped.
func (t *Tree) SizeBytes() uint64 {
	var n uint64
	t.walk(func(nd *node) bool {
		if !nd.own.IsZero() {
			n++
		}
		return true
	})
	return 14 + n*nodeWireSize
}

// Decode reconstructs a tree from wire data produced by AppendBinary. The
// result uses the supplied budget and options; the generalization step is
// taken from the wire header. Decoding defers aggregate propagation: all
// own weights land first and the aggregates are rebuilt with one bottom-up
// pass before the budget is enforced.
func Decode(src []byte, budget int, opts ...Option) (*Tree, error) {
	if len(src) < 14 {
		return nil, fmt.Errorf("%w: short header", ErrCodec)
	}
	if binary.BigEndian.Uint32(src[0:]) != _wireMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCodec)
	}
	if src[4] != _wireVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCodec, src[4])
	}
	stepBits := src[5]
	count := binary.BigEndian.Uint64(src[6:])
	src = src[14:]
	if uint64(len(src)) != count*nodeWireSize {
		return nil, fmt.Errorf("%w: body is %d bytes, want %d", ErrCodec, len(src), count*nodeWireSize)
	}
	opts = append([]Option{WithStepBits(stepBits)}, opts...)
	t, err := New(budget, opts...)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < count; i++ {
		key, n, err := flow.KeyFromBinary(src)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCodec, err)
		}
		src = src[n:]
		c := flow.Counters{
			Packets: binary.BigEndian.Uint64(src[0:]),
			Bytes:   binary.BigEndian.Uint64(src[8:]),
			Flows:   binary.BigEndian.Uint64(src[16:]),
		}
		src = src[24:]
		t.ensure(key).own.Add(c)
	}
	t.recomputeAgg(t.root)
	t.maybeCompress()
	return t, nil
}
