// Package flowtree implements Flowtree, the paper's exemplar novel
// computing primitive (Section VI): a self-adjusting tree over generalized
// flows. Each observed flow and each canonical generalization of it is a
// node; a node's parent is its most specific generalized flow. Every node
// carries a popularity annotation (packet/byte/flow counters); the
// popularity score of a node is its own weight plus that of its children.
//
// The tree self-adapts to the incoming data through a node budget: when the
// number of nodes exceeds the budget, the least popular leaves are folded
// into their parents (Compress), so hot traffic regions stay specific while
// cold regions are represented at coarser prefixes. All Table II operators
// are provided: Merge, Compress, Diff, Query, Drilldown, Top-k, Above-x and
// HHH.
package flowtree

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"

	"megadata/internal/flow"
)

// Option configures a Tree.
type Option func(*Tree)

// WithStepBits sets the prefix-shortening step of the canonical
// generalization chain (default 8, i.e. octet boundaries — the natural
// "domain knowledge" levels of IPv4 subnetting).
func WithStepBits(bits uint8) Option {
	return func(t *Tree) { t.stepBits = bits }
}

// WithScore sets the popularity score used for compression and ranking
// (default flow.ScoreBytes).
func WithScore(s flow.Score) Option {
	return func(t *Tree) { t.score = s }
}

// WithCompressTarget sets the fraction of the budget the tree compresses
// down to when the budget is exceeded (default 0.75; folding to exactly the
// budget would compress on every insert).
func WithCompressTarget(f float64) Option {
	return func(t *Tree) { t.compressTarget = f }
}

// node is one generalized flow in the tree. children is nil until the node
// gets its first child: most nodes are leaves, and not allocating their
// (empty) child maps measurably cuts allocation and GC scan work on the
// ingest path.
type node struct {
	key      flow.Key
	own      flow.Counters // weight attributed directly to this key
	agg      flow.Counters // own + descendants (the paper's popularity score)
	parent   *node
	children map[flow.Key]*node
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Tree is a Flowtree instance. It is not safe for concurrent use; the data
// store serializes access.
type Tree struct {
	budget         int
	stepBits       uint8
	compressTarget float64
	score          flow.Score
	root           *node
	nodes          map[flow.Key]*node
	inserted       uint64 // records ever added (diagnostics)
}

// New builds a Flowtree with a node budget (0 = unlimited).
func New(budget int, opts ...Option) (*Tree, error) {
	if budget < 0 {
		return nil, errors.New("flowtree: budget must be >= 0")
	}
	t := &Tree{
		budget:         budget,
		stepBits:       8,
		compressTarget: 0.75,
		score:          flow.ScoreBytes,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.stepBits == 0 || t.stepBits > 32 {
		return nil, fmt.Errorf("flowtree: step bits %d out of range", t.stepBits)
	}
	if t.compressTarget <= 0 || t.compressTarget > 1 {
		return nil, errors.New("flowtree: compress target must be in (0,1]")
	}
	if budget > 0 && budget < 2 {
		return nil, errors.New("flowtree: budget must be at least 2 nodes")
	}
	root := &node{key: flow.Root(), children: make(map[flow.Key]*node)}
	t.root = root
	t.nodes = map[flow.Key]*node{root.key: root}
	return t, nil
}

// Add ingests one flow record.
func (t *Tree) Add(rec flow.Record) {
	t.inserted++
	t.addCounters(rec.Key, flow.CountersOf(rec))
	t.maybeCompress()
}

// AddBatch ingests a slice of flow records, enforcing the node budget once
// at the end of the batch rather than after every record. Within a batch the
// tree may temporarily exceed its budget; the final state is compressed back
// under it.
//
// Compression runs once per batch instead of on every insert that crosses
// the budget, so the fold heap is built far less often; the resulting state
// is exactly what serial insertion would produce up to compression timing,
// which moves to batch boundaries.
func (t *Tree) AddBatch(recs []flow.Record) {
	for _, r := range recs {
		t.inserted++
		t.addCounters(r.Key, flow.CountersOf(r))
	}
	t.maybeCompress()
}

// AddCounters ingests a pre-aggregated weight at an arbitrary (possibly
// generalized) key. Used by Merge and by data-store re-aggregation.
func (t *Tree) AddCounters(key flow.Key, c flow.Counters) {
	t.addCounters(key, c)
	t.maybeCompress()
}

func (t *Tree) addCounters(key flow.Key, c flow.Counters) {
	n := t.ensure(key)
	n.own.Add(c)
	for cur := n; cur != nil; cur = cur.parent {
		cur.agg.Add(c)
	}
}

// ensure returns the node for key, creating it and all missing canonical
// ancestors. The ancestors inherit the descendants' aggregate lazily: agg
// updates happen in addCounters.
func (t *Tree) ensure(key flow.Key) *node {
	if n, ok := t.nodes[key]; ok {
		return n
	}
	// Build the missing part of the chain from key upward.
	missing := []flow.Key{key}
	var attach *node
	cur := key
	for {
		parent, ok := cur.GeneralizeStep(t.stepBits)
		if !ok {
			attach = t.root
			break
		}
		if p, exists := t.nodes[parent]; exists {
			attach = p
			break
		}
		missing = append(missing, parent)
		cur = parent
	}
	// Create from most general to most specific.
	for i := len(missing) - 1; i >= 0; i-- {
		n := &node{key: missing[i], parent: attach}
		if attach.children == nil {
			attach.children = make(map[flow.Key]*node, 2)
		}
		attach.children[n.key] = n
		t.nodes[n.key] = n
		// New interior nodes start empty; any existing weight under
		// them is impossible because chains are complete (children of
		// attach are never re-parented).
		attach = n
	}
	return attach
}

// Len returns the number of nodes (including the root).
func (t *Tree) Len() int { return len(t.nodes) }

// Inserted returns the number of records ever added.
func (t *Tree) Inserted() uint64 { return t.inserted }

// Budget returns the node budget (0 = unlimited).
func (t *Tree) Budget() int { return t.budget }

// SetBudget changes the node budget and compresses immediately if the tree
// is over it (the manager uses this to adapt granularity at run time,
// paper property 3).
func (t *Tree) SetBudget(budget int) error {
	if budget < 0 || (budget > 0 && budget < 2) {
		return errors.New("flowtree: budget must be 0 or >= 2")
	}
	t.budget = budget
	t.maybeCompress()
	return nil
}

// Total returns the aggregate counters over the whole tree.
func (t *Tree) Total() flow.Counters { return t.root.agg }

func (t *Tree) maybeCompress() {
	if t.budget > 0 && len(t.nodes) > t.budget {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// foldHeap orders leaves by ascending score; entries may be stale and are
// revalidated when popped.
type foldHeap struct {
	items []foldItem
	score flow.Score
}

type foldItem struct {
	n *node
	s uint64
}

func (h foldHeap) Len() int            { return len(h.items) }
func (h foldHeap) Less(i, j int) bool  { return h.items[i].s < h.items[j].s }
func (h foldHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *foldHeap) Push(x interface{}) { h.items = append(h.items, x.(foldItem)) }
func (h *foldHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// CompressTo folds least-popular leaves into their parents until at most
// target nodes remain (Table II: Compress — "summarize the lower level
// nodes"). The root is never folded. Weight is preserved exactly; only the
// attribution granularity coarsens.
func (t *Tree) CompressTo(target int) {
	if target < 1 {
		target = 1
	}
	if len(t.nodes) <= target {
		return
	}
	h := &foldHeap{score: t.score}
	h.items = make([]foldItem, 0, len(t.nodes))
	for _, n := range t.nodes {
		if n.isLeaf() && n != t.root {
			h.items = append(h.items, foldItem{n: n, s: n.agg.ScoreWith(t.score)})
		}
	}
	heap.Init(h)
	for len(t.nodes) > target && h.Len() > 0 {
		it := heap.Pop(h).(foldItem)
		n := it.n
		// Revalidate: the node may have been folded already, stopped
		// being a leaf (cannot happen during compression), or changed
		// score by absorbing a folded child.
		if t.nodes[n.key] != n || !n.isLeaf() || n == t.root {
			continue
		}
		if cur := n.agg.ScoreWith(t.score); cur != it.s {
			heap.Push(h, foldItem{n: n, s: cur})
			continue
		}
		p := n.parent
		p.own.Add(n.own)
		delete(p.children, n.key)
		delete(t.nodes, n.key)
		if p.isLeaf() && p != t.root {
			heap.Push(h, foldItem{n: p, s: p.agg.ScoreWith(t.score)})
		}
	}
}

// Compress folds down to the configured budget target (no-op when
// unlimited).
func (t *Tree) Compress() {
	if t.budget > 0 {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// Merge joins another Flowtree into t (Table II: Merge — across time or
// location). Every node's own weight is re-inserted at its key; the node
// budget then re-compresses as needed, which is exactly the paper's
// "A12 = compress(A1 ∪ A2)" construction.
func (t *Tree) Merge(other *Tree) error {
	if other == nil {
		return nil
	}
	if other.stepBits != t.stepBits {
		return errors.New("flowtree: merging trees with different generalization steps")
	}
	other.walk(func(n *node) bool {
		if !n.own.IsZero() {
			t.addCounters(n.key, n.own)
		}
		return true
	})
	t.maybeCompress()
	return nil
}

// MergeAll joins several Flowtrees into t with a single budget compression
// at the end, instead of one per merge. Sealing a sharded epoch fans N
// shard memtables together this way; compressing once over the union is
// both cheaper and no coarser than compressing after every constituent.
func (t *Tree) MergeAll(others ...*Tree) error {
	// Validate every tree before folding any weight in, so a mismatch
	// cannot leave t half-merged.
	for _, other := range others {
		if other != nil && other.stepBits != t.stepBits {
			return errors.New("flowtree: merging trees with different generalization steps")
		}
	}
	for _, other := range others {
		if other == nil {
			continue
		}
		other.walk(func(n *node) bool {
			if !n.own.IsZero() {
				t.addCounters(n.key, n.own)
			}
			return true
		})
	}
	t.maybeCompress()
	return nil
}

// Diff subtracts the popularity of flows appearing in other from t
// (Table II: Diff). Subtraction is exact where both trees hold the same
// key and saturates at zero; weight held at keys absent from t is ignored
// (t has no information about flows it never saw).
func (t *Tree) Diff(other *Tree) error {
	if other == nil {
		return nil
	}
	if other.stepBits != t.stepBits {
		return errors.New("flowtree: diffing trees with different generalization steps")
	}
	other.walk(func(on *node) bool {
		if on.own.IsZero() {
			return true
		}
		if n, ok := t.nodes[on.key]; ok {
			n.own.Sub(on.own)
		}
		return true
	})
	t.recomputeAgg(t.root)
	return nil
}

// recomputeAgg rebuilds aggregate counters bottom-up after bulk own-weight
// edits.
func (t *Tree) recomputeAgg(n *node) flow.Counters {
	agg := n.own
	for _, c := range n.children {
		agg.Add(t.recomputeAgg(c))
	}
	n.agg = agg
	return agg
}

// walk visits nodes pre-order (parents before children); fn returning false
// prunes the subtree.
func (t *Tree) walk(fn func(*node) bool) {
	var rec func(*node)
	rec = func(n *node) {
		if !fn(n) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Entry is one reported flow with its popularity.
type Entry struct {
	Key flow.Key
	// Counters is the popularity annotation (own + descendants unless
	// stated otherwise by the reporting operator).
	Counters flow.Counters
}

// Query returns the popularity score of a single flow (Table II: Query):
// the total weight of all stored flows that key generalizes. After
// compression the result is a lower bound — weight folded into ancestors
// coarser than key can no longer be attributed below it.
func (t *Tree) Query(key flow.Key) flow.Counters {
	var total flow.Counters
	var rec func(*node)
	rec = func(n *node) {
		if key.Generalizes(n.key) {
			total.Add(n.agg)
			return
		}
		if !overlaps(key, n.key) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return total
}

// overlaps reports whether some fully specific flow is contained in both
// keys.
func overlaps(a, b flow.Key) bool {
	minPfx := a.SrcPrefix
	if b.SrcPrefix < minPfx {
		minPfx = b.SrcPrefix
	}
	if a.SrcIP.Mask(minPfx) != b.SrcIP.Mask(minPfx) {
		return false
	}
	minPfx = a.DstPrefix
	if b.DstPrefix < minPfx {
		minPfx = b.DstPrefix
	}
	if a.DstIP.Mask(minPfx) != b.DstIP.Mask(minPfx) {
		return false
	}
	if !a.WildProto && !b.WildProto && a.Proto != b.Proto {
		return false
	}
	if !a.WildSrcPort && !b.WildSrcPort && a.SrcPort != b.SrcPort {
		return false
	}
	if !a.WildDstPort && !b.WildDstPort && a.DstPort != b.DstPort {
		return false
	}
	return true
}

// Drilldown returns the children of the node at key with their popularity
// scores (Table II: Drilldown), sorted by descending score. ok is false
// when key has no node (e.g. compressed away).
func (t *Tree) Drilldown(key flow.Key) ([]Entry, bool) {
	n, exists := t.nodes[key]
	if !exists {
		return nil, false
	}
	out := make([]Entry, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, Entry{Key: c.key, Counters: c.agg})
	}
	t.sortEntries(out)
	return out, true
}

// TopK returns the k flows with the highest directly attributed popularity
// (Table II: Top-k). Ranking uses own weight (including weight folded in by
// compression) rather than subtree aggregates, which would always rank the
// root first.
func (t *Tree) TopK(k int) []Entry {
	if k <= 0 {
		return nil
	}
	out := make([]Entry, 0, len(t.nodes))
	t.walk(func(n *node) bool {
		if !n.own.IsZero() {
			out = append(out, Entry{Key: n.key, Counters: n.own})
		}
		return true
	})
	t.sortEntries(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// AboveX returns all flows whose popularity score (own + descendants) is
// at least x under the tree's score function (Table II: Above-x).
func (t *Tree) AboveX(x uint64) []Entry {
	var out []Entry
	t.walk(func(n *node) bool {
		if n.agg.ScoreWith(t.score) >= x {
			out = append(out, Entry{Key: n.key, Counters: n.agg})
			return true
		}
		// Children can never exceed a parent's aggregate; prune.
		return false
	})
	t.sortEntries(out)
	return out
}

// HHHEntry is one hierarchical heavy hitter.
type HHHEntry struct {
	Key flow.Key
	// Counters is the full subtree weight.
	Counters flow.Counters
	// Discounted is the subtree score minus descendant HHHs, the value
	// compared against the threshold.
	Discounted uint64
}

// HHH returns all flows across the tree with a substantial popularity score
// (Table II: HHH): nodes whose subtree score, discounted by descendant
// heavy hitters, reaches phi * total.
func (t *Tree) HHH(phi float64) []HHHEntry {
	threshold := uint64(phi * float64(t.root.agg.ScoreWith(t.score)))
	if threshold == 0 {
		threshold = 1
	}
	var out []HHHEntry
	var rec func(n *node) uint64
	rec = func(n *node) uint64 {
		var claimed uint64
		for _, c := range n.children {
			claimed += rec(c)
		}
		score := n.agg.ScoreWith(t.score)
		discounted := score - claimed
		if discounted >= threshold {
			out = append(out, HHHEntry{Key: n.key, Counters: n.agg, Discounted: discounted})
			return score
		}
		return claimed
	}
	rec(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Discounted != out[j].Discounted {
			return out[i].Discounted > out[j].Discounted
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}

// keyLess is an arbitrary-but-deterministic total order over keys used for
// stable tie-breaking (cheaper than comparing String renderings).
func keyLess(a, b flow.Key) bool {
	switch {
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	case a.Proto != b.Proto:
		return a.Proto < b.Proto
	case a.SrcPrefix != b.SrcPrefix:
		return a.SrcPrefix < b.SrcPrefix
	case a.DstPrefix != b.DstPrefix:
		return a.DstPrefix < b.DstPrefix
	case a.WildProto != b.WildProto:
		return !a.WildProto
	case a.WildSrcPort != b.WildSrcPort:
		return !a.WildSrcPort
	default:
		return !a.WildDstPort && b.WildDstPort
	}
}

func (t *Tree) sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		si, sj := entries[i].Counters.ScoreWith(t.score), entries[j].Counters.ScoreWith(t.score)
		if si != sj {
			return si > sj
		}
		return keyLess(entries[i].Key, entries[j].Key)
	})
}

// Entries returns every node with non-zero own weight (the tree's exact
// content at current granularity), unsorted.
func (t *Tree) Entries() []Entry {
	var out []Entry
	t.walk(func(n *node) bool {
		if !n.own.IsZero() {
			out = append(out, Entry{Key: n.key, Counters: n.own})
		}
		return true
	})
	return out
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	cp, err := New(t.budget, WithStepBits(t.stepBits), WithScore(t.score), WithCompressTarget(t.compressTarget))
	if err != nil {
		// New only fails on invalid parameters, which t already
		// validated.
		panic(fmt.Sprintf("flowtree: clone: %v", err))
	}
	t.walk(func(n *node) bool {
		if !n.own.IsZero() {
			cp.addCounters(n.key, n.own)
		}
		return true
	})
	cp.inserted = t.inserted
	return cp
}

// StepBits returns the generalization step.
func (t *Tree) StepBits() uint8 { return t.stepBits }
