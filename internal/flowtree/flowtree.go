// Package flowtree implements Flowtree, the paper's exemplar novel
// computing primitive (Section VI): a self-adjusting tree over generalized
// flows. Each observed flow and each canonical generalization of it is a
// node; a node's parent is its most specific generalized flow. Every node
// carries a popularity annotation (packet/byte/flow counters); the
// popularity score of a node is its own weight plus that of its children.
//
// The tree self-adapts to the incoming data through a node budget: when the
// number of nodes exceeds the budget, the least popular leaves are folded
// into their parents (Compress), so hot traffic regions stay specific while
// cold regions are represented at coarser prefixes. All Table II operators
// are provided: Merge, Compress, Diff, Query, Drilldown, Top-k, Above-x and
// HHH.
//
// # Bulk operations
//
// Compression is a bulk sort-and-fold: every non-root node is collected into
// a reusable scratch slice with its popularity score, sorted ascending
// (descendants before ancestors on ties), and the least popular prefix is
// folded in order. A fold moves a node's own weight into its parent and
// never changes any aggregate (the parent's aggregate already contained the
// node), so scores computed at collection time stay valid for the whole
// compression — no heap maintenance and no stale-entry revalidation. Because
// aggregates are monotone up the tree, this sorted prefix is exactly the
// fold set of the incremental least-popular-leaf cascade; see CompressTo.
//
// Batch paths (AddBatch, Merge, MergeAll, Clone, Decode) defer aggregate
// propagation: own weights are applied first and the aggregate annotations
// are rebuilt with a single bottom-up pass when that is cheaper than walking
// the ancestor chain per record, then the budget is enforced once.
package flowtree

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"megadata/internal/flow"
)

// Option configures a Tree.
type Option func(*Tree)

// WithStepBits sets the prefix-shortening step of the canonical
// generalization chain (default 8, i.e. octet boundaries — the natural
// "domain knowledge" levels of IPv4 subnetting).
func WithStepBits(bits uint8) Option {
	return func(t *Tree) { t.stepBits = bits }
}

// WithScore sets the popularity score used for compression and ranking
// (default flow.ScoreBytes). The score must be monotone — nondecreasing in
// each counter — so that a node never outscores its ancestors, which is
// what lets compression fold a sorted prefix in one pass (all built-in
// scores are monotone field selectors). A non-monotone score degrades
// compression to coarser folds but never corrupts the tree.
func WithScore(s flow.Score) Option {
	return func(t *Tree) { t.score = s }
}

// WithCompressTarget sets the fraction of the budget the tree compresses
// down to when the budget is exceeded (default 0.75; folding to exactly the
// budget would compress on every insert).
func WithCompressTarget(f float64) Option {
	return func(t *Tree) { t.compressTarget = f }
}

// node is one generalized flow in the tree. children is nil until the node
// gets its first child: most nodes are leaves, and not allocating their
// (empty) child maps measurably cuts allocation and GC scan work on the
// ingest path.
type node struct {
	key      flow.Key
	own      flow.Counters // weight attributed directly to this key
	agg      flow.Counters // own + descendants (the paper's popularity score)
	parent   *node
	children map[flow.Key]*node
	depth    int32 // generalization steps below the root; fixed at creation
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Tree is a Flowtree instance. It is not safe for concurrent use; the data
// store serializes access.
type Tree struct {
	budget         int
	stepBits       uint8
	compressTarget float64
	score          flow.Score
	root           *node
	nodes          map[flow.Key]*node
	inserted       uint64 // records ever added (diagnostics)

	// Scratch buffers reused across hot-path calls (the tree is
	// single-goroutine, so plain fields suffice): the compression fold
	// slice and ensure's missing-ancestor chain.
	fold  []foldItem
	chain []flow.Key
}

// New builds a Flowtree with a node budget (0 = unlimited).
func New(budget int, opts ...Option) (*Tree, error) {
	if budget < 0 {
		return nil, errors.New("flowtree: budget must be >= 0")
	}
	t := &Tree{
		budget:         budget,
		stepBits:       8,
		compressTarget: 0.75,
		score:          flow.ScoreBytes,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.stepBits == 0 || t.stepBits > 32 {
		return nil, fmt.Errorf("flowtree: step bits %d out of range", t.stepBits)
	}
	if t.compressTarget <= 0 || t.compressTarget > 1 {
		return nil, errors.New("flowtree: compress target must be in (0,1]")
	}
	if budget > 0 && budget < 2 {
		return nil, errors.New("flowtree: budget must be at least 2 nodes")
	}
	root := &node{key: flow.Root(), children: make(map[flow.Key]*node)}
	t.root = root
	// Budgeted trees fill to their budget (plus a transient overshoot
	// between batch compressions); pre-sizing the node map avoids the
	// incremental rehash-and-copy churn while it grows.
	hint := 16
	if budget > 0 {
		hint = budget
		if hint > 1<<16 {
			hint = 1 << 16
		}
	}
	t.nodes = make(map[flow.Key]*node, hint)
	t.nodes[root.key] = root
	return t, nil
}

// Add ingests one flow record.
func (t *Tree) Add(rec flow.Record) {
	t.inserted++
	t.addCounters(rec.Key, flow.CountersOf(rec))
	t.maybeCompress()
}

// AddBatch ingests a slice of flow records, enforcing the node budget once
// at the end of the batch rather than after every record. Within a batch the
// tree may temporarily exceed its budget; the final state is compressed back
// under it.
//
// Compression runs once per batch instead of on every insert that crosses
// the budget, and aggregate propagation is deferred when profitable: records
// land as own weights only and the aggregate annotations are rebuilt with a
// single bottom-up recomputeAgg pass — O(nodes) instead of
// O(records × chain depth). The resulting state is exactly what serial
// insertion would produce up to compression timing, which moves to batch
// boundaries.
func (t *Tree) AddBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	t.inserted += uint64(len(recs))
	if t.deferAgg(len(recs)) {
		for _, r := range recs {
			t.ensure(r.Key).own.Add(flow.CountersOf(r))
		}
		t.recomputeAgg(t.root)
	} else {
		for _, r := range recs {
			t.addCounters(r.Key, flow.CountersOf(r))
		}
	}
	t.maybeCompress()
}

// chainDepth bounds the canonical generalization chain length of an exact
// key: three wildcard steps (source port, destination port, protocol) plus
// the alternating prefix-shortening steps of both addresses.
func (t *Tree) chainDepth() int {
	return 3 + 2*(31/int(t.stepBits)+1)
}

// deferAgg decides whether a bulk edit of n records should rebuild
// aggregates with one O(nodes) pass instead of walking the ancestor chain
// per record. The two costs have very different constants: an ancestor
// step is a pointer chase plus three integer adds, while a rebuild step
// iterates a child map (~20x more per node, measured on the ingest
// benchmarks) — so deferral only wins when the record volume swamps the
// tree, as it does for codec decodes, seal-time shard fan-ins and merges
// into small trees.
func (t *Tree) deferAgg(n int) bool {
	const rebuildCostFactor = 20
	return n*t.chainDepth() >= rebuildCostFactor*len(t.nodes)
}

// AddCounters ingests a pre-aggregated weight at an arbitrary (possibly
// generalized) key. Used by Merge and by data-store re-aggregation.
func (t *Tree) AddCounters(key flow.Key, c flow.Counters) {
	t.addCounters(key, c)
	t.maybeCompress()
}

func (t *Tree) addCounters(key flow.Key, c flow.Counters) {
	n := t.ensure(key)
	n.own.Add(c)
	for cur := n; cur != nil; cur = cur.parent {
		cur.agg.Add(c)
	}
}

// ensure returns the node for key, creating it and all missing canonical
// ancestors. The ancestors inherit the descendants' aggregate lazily: agg
// updates happen in addCounters.
func (t *Tree) ensure(key flow.Key) *node {
	if n, ok := t.nodes[key]; ok {
		return n
	}
	// Build the missing part of the chain from key upward, in the reusable
	// scratch slice (a fresh chain allocation per miss dominates ingest
	// allocation otherwise).
	missing := append(t.chain[:0], key)
	var attach *node
	cur := key
	for {
		parent, ok := cur.GeneralizeStep(t.stepBits)
		if !ok {
			attach = t.root
			break
		}
		if p, exists := t.nodes[parent]; exists {
			attach = p
			break
		}
		missing = append(missing, parent)
		cur = parent
	}
	// Create from most general to most specific.
	for i := len(missing) - 1; i >= 0; i-- {
		n := &node{key: missing[i], parent: attach, depth: attach.depth + 1}
		if attach.children == nil {
			attach.children = make(map[flow.Key]*node, 2)
		}
		attach.children[n.key] = n
		t.nodes[n.key] = n
		// New interior nodes start empty; any existing weight under
		// them is impossible because chains are complete (children of
		// attach are never re-parented).
		attach = n
	}
	t.chain = missing[:0]
	return attach
}

// Len returns the number of nodes (including the root).
func (t *Tree) Len() int { return len(t.nodes) }

// Inserted returns the number of records ever added.
func (t *Tree) Inserted() uint64 { return t.inserted }

// Budget returns the node budget (0 = unlimited).
func (t *Tree) Budget() int { return t.budget }

// SetBudget changes the node budget and compresses immediately if the tree
// is over it (the manager uses this to adapt granularity at run time,
// paper property 3).
func (t *Tree) SetBudget(budget int) error {
	if budget < 0 || (budget > 0 && budget < 2) {
		return errors.New("flowtree: budget must be 0 or >= 2")
	}
	t.budget = budget
	t.maybeCompress()
	return nil
}

// Total returns the aggregate counters over the whole tree.
func (t *Tree) Total() flow.Counters { return t.root.agg }

func (t *Tree) maybeCompress() {
	if t.budget > 0 && len(t.nodes) > t.budget {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// foldItem is one compression candidate: a node, its popularity score and
// its depth at collection time. Folds never change aggregates, so scores
// collected once stay valid for the whole compression.
type foldItem struct {
	n     *node
	s     uint64
	depth int32
}

// cmpFold is the fold order: ascending score; equal scores order deeper
// nodes first (so descendants always precede their ancestors — an
// ancestor's aggregate is at least any descendant's) with remaining ties
// broken by the deterministic key order, so compression does not depend on
// map iteration order. Keys are unique, so the order is strict.
func cmpFold(a, b foldItem) int {
	switch {
	case a.s != b.s:
		if a.s < b.s {
			return -1
		}
		return 1
	case a.depth != b.depth:
		if a.depth > b.depth {
			return -1
		}
		return 1
	case keyLess(a.n.key, b.n.key):
		return -1
	default:
		return 1
	}
}

func sortFoldItems(items []foldItem) { slices.SortFunc(items, cmpFold) }

// prepareFold arranges items so that the k smallest by fold order occupy
// items[:k] in sorted order — the sequential delete fold needs descendants
// folded before their ancestors. Folding a large fraction sorts
// everything; otherwise a quickselect narrows to the prefix first, so the
// frequent small compressions of a budgeted tree pay O(n + k log k)
// instead of O(n log n).
func prepareFold(items []foldItem, k int) {
	if 4*k >= 3*len(items) {
		sortFoldItems(items)
		return
	}
	quickselectFold(items, k)
	sortFoldItems(items[:k])
}

// quickselectFold partitions items so the k smallest elements occupy
// items[:k] in arbitrary order: Hoare partitioning with median-of-three
// pivots, recursing (iteratively) into the side containing k. The fold
// order is strict, so every partition makes progress.
func quickselectFold(items []foldItem, k int) {
	lo, hi := 0, len(items)
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		if cmpFold(items[mid], items[lo]) < 0 {
			items[mid], items[lo] = items[lo], items[mid]
		}
		if cmpFold(items[hi-1], items[lo]) < 0 {
			items[hi-1], items[lo] = items[lo], items[hi-1]
		}
		if cmpFold(items[hi-1], items[mid]) < 0 {
			items[hi-1], items[mid] = items[mid], items[hi-1]
		}
		pivot := items[mid]
		i, j := lo-1, hi
		for {
			for {
				i++
				if cmpFold(items[i], pivot) >= 0 {
					break
				}
			}
			for {
				j--
				if cmpFold(items[j], pivot) <= 0 {
					break
				}
			}
			if i >= j {
				break
			}
			items[i], items[j] = items[j], items[i]
		}
		// items[lo..j] precede-or-equal the pivot, items[j+1..) follow it.
		if k <= j+1 {
			hi = j + 1
		} else {
			lo = j + 1
		}
	}
	sortFoldItems(items[lo:hi])
}

// CompressTo folds least-popular leaves into their parents until at most
// target nodes remain (Table II: Compress — "summarize the lower level
// nodes"). The root is never folded. Weight is preserved exactly; only the
// attribution granularity coarsens.
//
// The fold is a bulk sort-and-fold. The incremental formulation — maintain
// a min-heap of leaves, repeatedly fold the least popular one, cascading to
// parents that become new leaves — admits a closed form: a cascaded parent
// always scores at least its folded child (aggregates are monotone up the
// tree), so the heap's pop sequence is nondecreasing in score, and the set
// it folds is exactly the first len-target of all non-root nodes ordered by
// ascending score with descendants before ancestors on ties. That prefix is
// closed under taking descendants — no heap maintenance, no boxing, no
// revalidation churn, and trivially terminating where the cascade-round
// argument needs the leaf front to shrink the tree every round. Two
// execution strategies over a reusable scratch slice exploit this: folding
// a minority of the tree quickselects and sorts just the fold prefix
// (O(n + k log k)), deleting each folded node in descendant-first order;
// folding a majority only partitions (O(n)) and rebuilds the node index
// and child links from the survivors.
func (t *Tree) CompressTo(target int) {
	if target < 1 {
		target = 1
	}
	k := len(t.nodes) - target
	if k <= 0 {
		return
	}
	items := t.fold[:0]
	for _, n := range t.nodes {
		if n != t.root {
			items = append(items, foldItem{n: n, s: n.agg.ScoreWith(t.score), depth: n.depth})
		}
	}
	if 2*k >= len(t.nodes) {
		// Folding most of the tree: partition out the k least popular
		// (no order needed — the marker-based weight push and the
		// survivor reattachment below are order-independent), then
		// rebuild the index and child links from the target survivors —
		// O(n) selection plus O(target) map inserts instead of an
		// O(n log n) sort and O(k) deletes.
		quickselectFold(items, k)
		// Mark the folded prefix (the nodes are discarded, their depth is
		// free as a marker), then push every folded node's own weight
		// directly to its nearest surviving ancestor. With a monotone
		// score that ancestor is simply the parent chain's first
		// survivor, and the direct push sums to exactly what transitive
		// child-to-parent accumulation would; under a contract-violating
		// score it keeps the weight out of discarded nodes.
		for _, it := range items[:k] {
			it.n.depth = -1
		}
		for _, it := range items[:k] {
			p := it.n.parent
			for p.depth < 0 {
				p = p.parent
			}
			p.own.Add(it.n.own)
		}
		survivors := items[k:]
		// Clearing retains the maps' storage for the refill; only a
		// drastically oversized node index is dropped for a right-sized
		// one, so one-shot bulk folds (decode, seal fan-in) hand the
		// memory back while the steady state stays allocation-free.
		var nodes map[flow.Key]*node
		if 4*target >= len(t.nodes) {
			nodes = t.nodes
			clear(nodes)
		} else {
			nodes = make(map[flow.Key]*node, target)
		}
		nodes[t.root.key] = t.root
		clear(t.root.children)
		for _, it := range survivors {
			clear(it.n.children)
			nodes[it.n.key] = it.n
		}
		for _, it := range survivors {
			n := it.n
			p := n.parent
			// A monotone score folds every descendant of a folded node,
			// so n.parent always survives; under a non-monotone score it
			// may not — reattach to the nearest surviving ancestor (the
			// root always survives) rather than detach the subtree.
			for p.depth < 0 {
				p = p.parent
			}
			n.parent = p
			if p.children == nil {
				p.children = make(map[flow.Key]*node, 2)
			}
			p.children[n.key] = n
		}
		t.nodes = nodes
	} else {
		// The sequential fold needs items[:k] in fold order so that
		// descendants fold (and push their weight) before ancestors.
		prepareFold(items, k)
		for _, it := range items[:k] {
			n := it.n
			// Under the monotone-score contract n is always a leaf by the
			// time it is reached; a non-monotone score can violate that —
			// skip the fold instead of orphaning the children, and let
			// the cascade fallback below finish the job.
			if len(n.children) != 0 {
				continue
			}
			p := n.parent
			p.own.Add(n.own)
			delete(p.children, n.key)
			delete(t.nodes, n.key)
		}
	}
	// Zero the scratch so the retained backing array does not pin the
	// folded nodes, and drop it entirely when a one-shot bulk fold left it
	// drastically oversized for the surviving tree.
	clear(items)
	if cap(items) > 4*len(t.nodes) {
		items = nil
	}
	t.fold = items[:0]
	if len(t.nodes) > target {
		// Only reachable under a contract-violating (non-monotone) score,
		// when the sequential fold had to skip prefix members with
		// surviving children. Fall back to the incremental cascade, which
		// reaches the target for any score.
		t.compressCascade(target)
	}
}

// compressCascade is the order-robust fallback fold: round by round, the
// current leaves are sorted ascending by score and folded, with parents
// that lose their last child joining the next round. Every round folds at
// least one leaf (a tree above target always has a non-root leaf), so the
// target is always reached regardless of the score function. The sorted
// prefix fold in CompressTo is the fast path; this runs only when a
// non-monotone score defeats its closure argument.
func (t *Tree) compressCascade(target int) {
	round := t.fold[:0]
	for _, n := range t.nodes {
		if n != t.root && n.isLeaf() {
			round = append(round, foldItem{n: n, s: n.agg.ScoreWith(t.score), depth: n.depth})
		}
	}
	var next []foldItem
	for len(t.nodes) > target && len(round) > 0 {
		sortFoldItems(round)
		next = next[:0]
		for _, it := range round {
			if len(t.nodes) <= target {
				break
			}
			n := it.n
			p := n.parent
			p.own.Add(n.own)
			delete(p.children, n.key)
			delete(t.nodes, n.key)
			if p != t.root && p.isLeaf() {
				next = append(next, foldItem{n: p, s: p.agg.ScoreWith(t.score), depth: p.depth})
			}
		}
		round, next = next, round
	}
	clear(round)
	t.fold = round[:0]
}

// Compress folds down to the configured budget target (no-op when
// unlimited).
func (t *Tree) Compress() {
	if t.budget > 0 {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// Merge joins another Flowtree into t (Table II: Merge — across time or
// location). Every node's own weight is added at its key; the node budget
// then re-compresses as needed, which is exactly the paper's
// "A12 = compress(A1 ∪ A2)" construction.
func (t *Tree) Merge(other *Tree) error {
	return t.MergeAll(other)
}

// MergeAll joins several Flowtrees into t with a single budget compression
// at the end, instead of one per merge. Sealing a sharded epoch fans N
// shard memtables together this way; compressing once over the union is
// both cheaper and no coarser than compressing after every constituent.
//
// Aggregate propagation is deferred when profitable: the sources' own
// weights land first and t's aggregates are rebuilt with one bottom-up
// pass, instead of re-walking the ancestor chain per source node.
func (t *Tree) MergeAll(others ...*Tree) error {
	// Validate every tree before folding any weight in, so a mismatch
	// cannot leave t half-merged.
	total := 0
	for _, other := range others {
		if other == nil {
			continue
		}
		if other.stepBits != t.stepBits {
			return errors.New("flowtree: merging trees with different generalization steps")
		}
		total += len(other.nodes)
	}
	if total == 0 {
		return nil
	}
	deferred := t.deferAgg(total)
	for _, other := range others {
		if other == nil {
			continue
		}
		other.walk(func(n *node) bool {
			if !n.own.IsZero() {
				if deferred {
					t.ensure(n.key).own.Add(n.own)
				} else {
					t.addCounters(n.key, n.own)
				}
			}
			return true
		})
	}
	if deferred {
		t.recomputeAgg(t.root)
	}
	t.maybeCompress()
	return nil
}

// Diff subtracts the popularity of flows appearing in other from t
// (Table II: Diff). Subtraction is exact where both trees hold the same
// key and saturates at zero; weight held at keys absent from t is ignored
// (t has no information about flows it never saw).
func (t *Tree) Diff(other *Tree) error {
	if other == nil {
		return nil
	}
	if other.stepBits != t.stepBits {
		return errors.New("flowtree: diffing trees with different generalization steps")
	}
	other.walk(func(on *node) bool {
		if on.own.IsZero() {
			return true
		}
		if n, ok := t.nodes[on.key]; ok {
			n.own.Sub(on.own)
		}
		return true
	})
	t.recomputeAgg(t.root)
	return nil
}

// recomputeAgg rebuilds aggregate counters bottom-up after bulk own-weight
// edits.
func (t *Tree) recomputeAgg(n *node) flow.Counters {
	agg := n.own
	for _, c := range n.children {
		agg.Add(t.recomputeAgg(c))
	}
	n.agg = agg
	return agg
}

// walk visits nodes pre-order (parents before children); fn returning false
// prunes the subtree.
func (t *Tree) walk(fn func(*node) bool) {
	var rec func(*node)
	rec = func(n *node) {
		if !fn(n) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

// Entry is one reported flow with its popularity.
type Entry struct {
	Key flow.Key
	// Counters is the popularity annotation (own + descendants unless
	// stated otherwise by the reporting operator).
	Counters flow.Counters
}

// Query returns the popularity score of a single flow (Table II: Query):
// the total weight of all stored flows that key generalizes. After
// compression the result is a lower bound — weight folded into ancestors
// coarser than key can no longer be attributed below it.
func (t *Tree) Query(key flow.Key) flow.Counters {
	var total flow.Counters
	var rec func(*node)
	rec = func(n *node) {
		if key.Generalizes(n.key) {
			total.Add(n.agg)
			return
		}
		if !overlaps(key, n.key) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
	return total
}

// overlaps reports whether some fully specific flow is contained in both
// keys.
func overlaps(a, b flow.Key) bool {
	minPfx := a.SrcPrefix
	if b.SrcPrefix < minPfx {
		minPfx = b.SrcPrefix
	}
	if a.SrcIP.Mask(minPfx) != b.SrcIP.Mask(minPfx) {
		return false
	}
	minPfx = a.DstPrefix
	if b.DstPrefix < minPfx {
		minPfx = b.DstPrefix
	}
	if a.DstIP.Mask(minPfx) != b.DstIP.Mask(minPfx) {
		return false
	}
	if !a.WildProto && !b.WildProto && a.Proto != b.Proto {
		return false
	}
	if !a.WildSrcPort && !b.WildSrcPort && a.SrcPort != b.SrcPort {
		return false
	}
	if !a.WildDstPort && !b.WildDstPort && a.DstPort != b.DstPort {
		return false
	}
	return true
}

// Drilldown returns the children of the node at key with their popularity
// scores (Table II: Drilldown), sorted by descending score. ok is false
// when key has no node (e.g. compressed away).
func (t *Tree) Drilldown(key flow.Key) ([]Entry, bool) {
	n, exists := t.nodes[key]
	if !exists {
		return nil, false
	}
	out := make([]Entry, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, Entry{Key: c.key, Counters: c.agg})
	}
	t.sortEntries(out)
	return out, true
}

// TopK returns the k flows with the highest directly attributed popularity
// (Table II: Top-k). Ranking uses own weight (including weight folded in by
// compression) rather than subtree aggregates, which would always rank the
// root first.
func (t *Tree) TopK(k int) []Entry {
	if k <= 0 {
		return nil
	}
	out := make([]Entry, 0, len(t.nodes))
	t.walk(func(n *node) bool {
		if !n.own.IsZero() {
			out = append(out, Entry{Key: n.key, Counters: n.own})
		}
		return true
	})
	t.sortEntries(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// AboveX returns all flows whose popularity score (own + descendants) is
// at least x under the tree's score function (Table II: Above-x).
func (t *Tree) AboveX(x uint64) []Entry {
	var out []Entry
	t.walk(func(n *node) bool {
		if n.agg.ScoreWith(t.score) >= x {
			out = append(out, Entry{Key: n.key, Counters: n.agg})
			return true
		}
		// Children can never exceed a parent's aggregate; prune.
		return false
	})
	t.sortEntries(out)
	return out
}

// HHHEntry is one hierarchical heavy hitter.
type HHHEntry struct {
	Key flow.Key
	// Counters is the full subtree weight.
	Counters flow.Counters
	// Discounted is the subtree score minus descendant HHHs, the value
	// compared against the threshold.
	Discounted uint64
}

// HHH returns all flows across the tree with a substantial popularity score
// (Table II: HHH): nodes whose subtree score, discounted by descendant
// heavy hitters, reaches phi * total.
func (t *Tree) HHH(phi float64) []HHHEntry {
	threshold := uint64(phi * float64(t.root.agg.ScoreWith(t.score)))
	if threshold == 0 {
		threshold = 1
	}
	var out []HHHEntry
	var rec func(n *node) uint64
	rec = func(n *node) uint64 {
		var claimed uint64
		for _, c := range n.children {
			claimed += rec(c)
		}
		score := n.agg.ScoreWith(t.score)
		discounted := score - claimed
		if discounted >= threshold {
			out = append(out, HHHEntry{Key: n.key, Counters: n.agg, Discounted: discounted})
			return score
		}
		return claimed
	}
	rec(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Discounted != out[j].Discounted {
			return out[i].Discounted > out[j].Discounted
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}

// keyLess is an arbitrary-but-deterministic total order over keys used for
// stable tie-breaking (cheaper than comparing String renderings).
func keyLess(a, b flow.Key) bool {
	switch {
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	case a.Proto != b.Proto:
		return a.Proto < b.Proto
	case a.SrcPrefix != b.SrcPrefix:
		return a.SrcPrefix < b.SrcPrefix
	case a.DstPrefix != b.DstPrefix:
		return a.DstPrefix < b.DstPrefix
	case a.WildProto != b.WildProto:
		return !a.WildProto
	case a.WildSrcPort != b.WildSrcPort:
		return !a.WildSrcPort
	default:
		return !a.WildDstPort && b.WildDstPort
	}
}

func (t *Tree) sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		si, sj := entries[i].Counters.ScoreWith(t.score), entries[j].Counters.ScoreWith(t.score)
		if si != sj {
			return si > sj
		}
		return keyLess(entries[i].Key, entries[j].Key)
	})
}

// Entries returns every node with non-zero own weight (the tree's exact
// content at current granularity) in the deterministic keyLess order — the
// order the v2 wire codec prefix-delta-encodes against.
func (t *Tree) Entries() []Entry {
	var out []Entry
	t.walk(func(n *node) bool {
		if !n.own.IsZero() {
			out = append(out, Entry{Key: n.key, Counters: n.own})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// Clone returns a deep copy of the tree: a structural copy of every node
// with its counters, O(nodes) with no re-insertion through the ancestor
// chains (the copy shares no state with t, including scratch buffers). The
// Tree is assembled directly — t already validated its configuration, and
// going through New would allocate a budget-hinted node map only to
// replace it with one sized to the actual tree. All copied nodes come from
// one slab allocation: clones are taken on hot paths (shard snapshots per
// live query, FlowDB memo-cache hits), where one allocation per node
// dominated the copy cost.
func (t *Tree) Clone() *Tree {
	cp := &Tree{
		budget:         t.budget,
		stepBits:       t.stepBits,
		compressTarget: t.compressTarget,
		score:          t.score,
		inserted:       t.inserted,
	}
	cp.nodes = make(map[flow.Key]*node, len(t.nodes))
	slab := make([]node, len(t.nodes))
	cp.root = copySubtree(cp, &slab, t.root, nil)
	return cp
}

// copySubtree deep-copies src and its descendants into cp, carving the
// copies off the shared slab and registering each in cp's node index.
func copySubtree(cp *Tree, slab *[]node, src, parent *node) *node {
	dst := &(*slab)[0]
	*slab = (*slab)[1:]
	dst.key, dst.own, dst.agg = src.key, src.own, src.agg
	dst.parent, dst.depth = parent, src.depth
	cp.nodes[dst.key] = dst
	if len(src.children) > 0 {
		dst.children = make(map[flow.Key]*node, len(src.children))
		for k, c := range src.children {
			dst.children[k] = copySubtree(cp, slab, c, dst)
		}
	}
	return dst
}

// StepBits returns the generalization step.
func (t *Tree) StepBits() uint8 { return t.stepBits }
