// Package flowtree implements Flowtree, the paper's exemplar novel
// computing primitive (Section VI): a self-adjusting tree over generalized
// flows. Each observed flow and each canonical generalization of it is a
// node; a node's parent is its most specific generalized flow. Every node
// carries a popularity annotation (packet/byte/flow counters); the
// popularity score of a node is its own weight plus that of its children.
//
// The tree self-adapts to the incoming data through a node budget: when the
// number of nodes exceeds the budget, the least popular leaves are folded
// into their parents (Compress), so hot traffic regions stay specific while
// cold regions are represented at coarser prefixes. All Table II operators
// are provided: Merge, Compress, Diff, Query, Drilldown, Top-k, Above-x and
// HHH.
//
// # Slab layout
//
// Nodes live in a flat slab ([]node) addressed by int32 offsets instead of
// pointers: parent links are slab indices, child sets are small sorted
// index arrays, and the key index maps flow.Key to a slab offset. The slab
// turns the hot paths cache-linear — compression collects fold candidates
// with one sequential sweep, Merge and Diff stream the source slab instead
// of chasing a pointer graph, and Clone is little more than a slab memcpy
// — and it takes the garbage collector out of the steady state: the
// only pointer-bearing field a node carries is its child-index slice, so a
// million-node tree is a handful of heap objects rather than a million
// individually scanned ones.
//
// Slab invariants:
//
//   - slab[0] is the root; it is never folded, freed or re-parented.
//   - A slot is live iff its depth is >= 0; the live count is tracked
//     (Len), and the live slots are exactly the values of the key index —
//     which is itself deferred after Clone and materialized from the slab
//     on first need, so read-only snapshot clones never build it.
//   - Folded slots are marked depth = -1 and pushed onto the free list;
//     ensure reuses them (retaining their child-array capacity) before
//     growing the slab. Free slots are never reachable from a live node.
//   - children holds the slab indices of a node's children sorted by the
//     children's keyLess order, so child lookup and removal binary-search
//     the (tiny) fanout instead of hashing.
//   - Bulk folds that discard most of the tree rebuild a compact slab of
//     the survivors (and reset the free list), handing the memory of
//     one-shot decode/fan-in spikes back instead of pinning it.
//
// Because slab indices survive append-growth where interior pointers would
// not, mutation code holds indices across allocations and only materializes
// *node pointers between them.
//
// # Bulk operations
//
// Compression is a bulk sort-and-fold: every live non-root node is
// collected from the slab in one linear sweep with its popularity score,
// sorted ascending (descendants before ancestors on ties), and the least
// popular prefix is folded in order. A fold moves a node's own weight into
// its parent and never changes any aggregate (the parent's aggregate
// already contained the node), so scores computed at collection time stay
// valid for the whole compression — no heap maintenance and no stale-entry
// revalidation. Because aggregates are monotone up the tree, this sorted
// prefix is exactly the fold set of the incremental least-popular-leaf
// cascade; see CompressTo.
//
// Batch paths (AddBatch, Merge, MergeAll, Clone, Decode) defer aggregate
// propagation: own weights are applied first and the aggregate annotations
// are rebuilt with a single bottom-up pass when that is cheaper than walking
// the ancestor chain per record, then the budget is enforced once.
//
// The sorted entry list the wire codecs encode against (Entries,
// AppendBinary, SizeBytes, DeltaHash) is cached and invalidated on
// mutation, so repeated exports of an unchanged tree — delta bases,
// re-ships, size metering — skip the O(n log n) sort after the first.
package flowtree

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"megadata/internal/flow"
)

// Option configures a Tree.
type Option func(*Tree)

// WithStepBits sets the prefix-shortening step of the canonical
// generalization chain (default 8, i.e. octet boundaries — the natural
// "domain knowledge" levels of IPv4 subnetting).
func WithStepBits(bits uint8) Option {
	return func(t *Tree) { t.stepBits = bits }
}

// WithScore sets the popularity score used for compression and ranking
// (default flow.ScoreBytes). The score must be monotone — nondecreasing in
// each counter — so that a node never outscores its ancestors, which is
// what lets compression fold a sorted prefix in one pass (all built-in
// scores are monotone field selectors). A non-monotone score degrades
// compression to coarser folds but never corrupts the tree.
func WithScore(s flow.Score) Option {
	return func(t *Tree) { t.score = s }
}

// WithCompressTarget sets the fraction of the budget the tree compresses
// down to when the budget is exceeded (default 0.75; folding to exactly the
// budget would compress on every insert).
func WithCompressTarget(f float64) Option {
	return func(t *Tree) { t.compressTarget = f }
}

// noNode is the nil slab index (the root's parent).
const noNode int32 = -1

// freeDepth marks a slab slot as dead: folded out of the tree and (outside
// a compression in progress) parked on the free list.
const freeDepth int32 = -1

// rootIdx is the root's fixed slab offset.
const rootIdx int32 = 0

// node is one generalized flow in the slab. children is nil until the node
// gets its first child: most nodes are leaves, and not allocating their
// (empty) child arrays keeps the ingest path allocation-flat.
type node struct {
	key      flow.Key
	own      flow.Counters // weight attributed directly to this key
	agg      flow.Counters // own + descendants (the paper's popularity score)
	parent   int32         // slab index of the parent; noNode for the root
	depth    int32         // generalization steps below the root; freeDepth = dead slot
	children []int32       // child slab indices in the children's keyLess order
}

func (n *node) isLeaf() bool { return len(n.children) == 0 }

// Tree is a Flowtree instance. It is not safe for concurrent use; the data
// store serializes access.
type Tree struct {
	budget         int
	stepBits       uint8
	compressTarget float64
	score          flow.Score
	slab           []node
	free           []int32 // dead slab slots available for reuse
	live           int     // live node count, root included (Len without the index)
	// nodes is the key→slab-offset index. nil means deferred: Clone skips
	// the index (its dominant cost — read-only snapshot clones never use
	// it) and index() materializes it from the slab on first need. A nil
	// map still answers deletes and misses correctly, so fold paths need
	// no materialization.
	nodes    map[flow.Key]int32
	inserted uint64 // records ever added (diagnostics)

	// Cached wire-entry list (weighted nodes, normalized keys, keyLess
	// order) and its validity bit; every mutation dirties it.
	entries   []Entry
	entriesOK bool

	// Scratch buffers reused across hot-path calls (the tree is
	// single-goroutine, so plain fields suffice): the compression fold
	// slice and ensure's missing-ancestor chain.
	fold  []foldItem
	chain []flow.Key
}

// New builds a Flowtree with a node budget (0 = unlimited).
func New(budget int, opts ...Option) (*Tree, error) {
	if budget < 0 {
		return nil, errors.New("flowtree: budget must be >= 0")
	}
	t := &Tree{
		budget:         budget,
		stepBits:       8,
		compressTarget: 0.75,
		score:          flow.ScoreBytes,
	}
	for _, opt := range opts {
		opt(t)
	}
	if t.stepBits == 0 || t.stepBits > 32 {
		return nil, fmt.Errorf("flowtree: step bits %d out of range", t.stepBits)
	}
	if t.compressTarget <= 0 || t.compressTarget > 1 {
		return nil, errors.New("flowtree: compress target must be in (0,1]")
	}
	if budget > 0 && budget < 2 {
		return nil, errors.New("flowtree: budget must be at least 2 nodes")
	}
	// Budgeted trees fill to their budget (plus a transient overshoot
	// between batch compressions); pre-sizing the slab and the node index
	// avoids incremental growth churn on the way up.
	hint := 16
	if budget > 0 {
		hint = budget
		if hint > 1<<16 {
			hint = 1 << 16
		}
	}
	t.slab = make([]node, 1, hint)
	t.slab[rootIdx] = node{key: flow.Root(), parent: noNode}
	t.nodes = make(map[flow.Key]int32, hint)
	t.nodes[t.slab[rootIdx].key] = rootIdx
	t.live = 1
	return t, nil
}

// index returns the key→slab-offset map, materializing a deferred one with
// a single linear slab sweep.
func (t *Tree) index() map[flow.Key]int32 {
	if t.nodes == nil {
		m := make(map[flow.Key]int32, t.live)
		for i := range t.slab {
			if t.slab[i].depth >= 0 {
				m[t.slab[i].key] = int32(i)
			}
		}
		t.nodes = m
	}
	return t.nodes
}

// dirty invalidates the cached sorted entry list; every own-weight or
// structure mutation goes through it.
func (t *Tree) dirty() { t.entriesOK = false }

// Add ingests one flow record.
func (t *Tree) Add(rec flow.Record) {
	t.inserted++
	t.addCounters(rec.Key, flow.CountersOf(rec))
	t.maybeCompress()
}

// AddBatch ingests a slice of flow records, enforcing the node budget once
// at the end of the batch rather than after every record. Within a batch the
// tree may temporarily exceed its budget; the final state is compressed back
// under it.
//
// Compression runs once per batch instead of on every insert that crosses
// the budget, and aggregate propagation is deferred when profitable: records
// land as own weights only and the aggregate annotations are rebuilt with a
// single bottom-up recomputeAgg pass — O(nodes) instead of
// O(records × chain depth). The resulting state is exactly what serial
// insertion would produce up to compression timing, which moves to batch
// boundaries.
func (t *Tree) AddBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	t.dirty()
	t.inserted += uint64(len(recs))
	if t.deferAgg(len(recs)) {
		for _, r := range recs {
			ni := t.ensure(r.Key)
			t.slab[ni].own.Add(flow.CountersOf(r))
		}
		t.recomputeAgg(rootIdx)
	} else {
		for _, r := range recs {
			t.addCounters(r.Key, flow.CountersOf(r))
		}
	}
	t.maybeCompress()
}

// chainDepth bounds the canonical generalization chain length of an exact
// key: three wildcard steps (source port, destination port, protocol) plus
// the alternating prefix-shortening steps of both addresses.
func (t *Tree) chainDepth() int {
	return 3 + 2*(31/int(t.stepBits)+1)
}

// deferAgg decides whether a bulk edit of n records should rebuild
// aggregates with one O(nodes) pass instead of walking the ancestor chain
// per record. The two costs have different constants: an ancestor step is a
// slab load plus three integer adds, while a rebuild step iterates a child
// array — so deferral only wins when the record volume swamps the tree, as
// it does for codec decodes, seal-time shard fan-ins and merges into small
// trees.
func (t *Tree) deferAgg(n int) bool {
	const rebuildCostFactor = 20
	return n*t.chainDepth() >= rebuildCostFactor*t.live
}

// AddCounters ingests a pre-aggregated weight at an arbitrary (possibly
// generalized) key. Used by Merge and by data-store re-aggregation.
func (t *Tree) AddCounters(key flow.Key, c flow.Counters) {
	t.addCounters(key, c)
	t.maybeCompress()
}

func (t *Tree) addCounters(key flow.Key, c flow.Counters) {
	t.dirty()
	ni := t.ensure(key)
	t.slab[ni].own.Add(c)
	for cur := ni; cur != noNode; cur = t.slab[cur].parent {
		t.slab[cur].agg.Add(c)
	}
}

// alloc carves a slab slot for a new node — reusing a free slot (and its
// child-array capacity) when one exists — and registers it in the index.
func (t *Tree) alloc(key flow.Key, parent, depth int32) int32 {
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
		nd := &t.slab[i]
		nd.key, nd.own, nd.agg = key, flow.Counters{}, flow.Counters{}
		nd.parent, nd.depth = parent, depth
		nd.children = nd.children[:0]
	} else {
		i = int32(len(t.slab))
		t.slab = append(t.slab, node{key: key, parent: parent, depth: depth})
	}
	t.nodes[key] = i
	t.live++
	return i
}

// childPos binary-searches pi's sorted child array for the position of (or
// insertion point for) a child with the given key.
func (t *Tree) childPos(pi int32, key flow.Key) int {
	kids := t.slab[pi].children
	return sort.Search(len(kids), func(j int) bool { return !keyLess(t.slab[kids[j]].key, key) })
}

// addChild inserts ci into pi's child array at its sorted position.
func (t *Tree) addChild(pi, ci int32) {
	pos := t.childPos(pi, t.slab[ci].key)
	p := &t.slab[pi]
	p.children = append(p.children, 0)
	copy(p.children[pos+1:], p.children[pos:])
	p.children[pos] = ci
}

// removeChild deletes ci from pi's sorted child array.
func (t *Tree) removeChild(pi, ci int32) {
	pos := t.childPos(pi, t.slab[ci].key)
	p := &t.slab[pi]
	copy(p.children[pos:], p.children[pos+1:])
	p.children = p.children[:len(p.children)-1]
}

// ensure returns the slab index for key, creating the node and all missing
// canonical ancestors. The ancestors inherit the descendants' aggregate
// lazily: agg updates happen in addCounters.
func (t *Tree) ensure(key flow.Key) int32 {
	if i, ok := t.index()[key]; ok {
		return i
	}
	// Build the missing part of the chain from key upward, in the reusable
	// scratch slice (a fresh chain allocation per miss dominates ingest
	// allocation otherwise).
	missing := append(t.chain[:0], key)
	attach := rootIdx
	cur := key
	for {
		parent, ok := cur.GeneralizeStep(t.stepBits)
		if !ok {
			attach = rootIdx
			break
		}
		if p, exists := t.nodes[parent]; exists {
			attach = p
			break
		}
		missing = append(missing, parent)
		cur = parent
	}
	// Create from most general to most specific. alloc may grow the slab,
	// so only indices are held across iterations.
	for i := len(missing) - 1; i >= 0; i-- {
		depth := t.slab[attach].depth + 1
		ci := t.alloc(missing[i], attach, depth)
		t.addChild(attach, ci)
		// New interior nodes start empty; any existing weight under
		// them is impossible because chains are complete (children of
		// attach are never re-parented).
		attach = ci
	}
	t.chain = missing[:0]
	return attach
}

// Len returns the number of nodes (including the root).
func (t *Tree) Len() int { return t.live }

// Inserted returns the number of records ever added.
func (t *Tree) Inserted() uint64 { return t.inserted }

// Budget returns the node budget (0 = unlimited).
func (t *Tree) Budget() int { return t.budget }

// SetBudget changes the node budget and compresses immediately if the tree
// is over it (the manager uses this to adapt granularity at run time,
// paper property 3).
func (t *Tree) SetBudget(budget int) error {
	if budget < 0 || (budget > 0 && budget < 2) {
		return errors.New("flowtree: budget must be 0 or >= 2")
	}
	t.budget = budget
	t.maybeCompress()
	return nil
}

// Total returns the aggregate counters over the whole tree.
func (t *Tree) Total() flow.Counters { return t.slab[rootIdx].agg }

func (t *Tree) maybeCompress() {
	if t.budget > 0 && t.live > t.budget {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// foldItem is one compression candidate: a slab index, its popularity score
// and its depth at collection time. Folds never change aggregates, so
// scores collected once stay valid for the whole compression. The item is
// pointer-free, so the fold scratch is invisible to the garbage collector.
type foldItem struct {
	s     uint64
	idx   int32
	depth int32
}

// cmpFold is the fold order: ascending score; equal scores order deeper
// nodes first (so descendants always precede their ancestors — an
// ancestor's aggregate is at least any descendant's) with remaining ties
// broken by the deterministic key order, so compression does not depend on
// collection order. Keys are unique, so the order is strict.
func (t *Tree) cmpFold(a, b foldItem) int {
	switch {
	case a.s != b.s:
		if a.s < b.s {
			return -1
		}
		return 1
	case a.depth != b.depth:
		if a.depth > b.depth {
			return -1
		}
		return 1
	case keyLess(t.slab[a.idx].key, t.slab[b.idx].key):
		return -1
	default:
		return 1
	}
}

func (t *Tree) sortFoldItems(items []foldItem) { slices.SortFunc(items, t.cmpFold) }

// prepareFold arranges items so that the k smallest by fold order occupy
// items[:k] in sorted order — the sequential delete fold needs descendants
// folded before their ancestors. Folding a large fraction sorts
// everything; otherwise a quickselect narrows to the prefix first, so the
// frequent small compressions of a budgeted tree pay O(n + k log k)
// instead of O(n log n).
func (t *Tree) prepareFold(items []foldItem, k int) {
	if 4*k >= 3*len(items) {
		t.sortFoldItems(items)
		return
	}
	t.quickselectFold(items, k)
	t.sortFoldItems(items[:k])
}

// quickselectFold partitions items so the k smallest elements occupy
// items[:k] in arbitrary order: Hoare partitioning with median-of-three
// pivots, recursing (iteratively) into the side containing k. The fold
// order is strict, so every partition makes progress.
func (t *Tree) quickselectFold(items []foldItem, k int) {
	lo, hi := 0, len(items)
	for hi-lo > 16 {
		mid := lo + (hi-lo)/2
		if t.cmpFold(items[mid], items[lo]) < 0 {
			items[mid], items[lo] = items[lo], items[mid]
		}
		if t.cmpFold(items[hi-1], items[lo]) < 0 {
			items[hi-1], items[lo] = items[lo], items[hi-1]
		}
		if t.cmpFold(items[hi-1], items[mid]) < 0 {
			items[hi-1], items[mid] = items[mid], items[hi-1]
		}
		pivot := items[mid]
		i, j := lo-1, hi
		for {
			for {
				i++
				if t.cmpFold(items[i], pivot) >= 0 {
					break
				}
			}
			for {
				j--
				if t.cmpFold(items[j], pivot) <= 0 {
					break
				}
			}
			if i >= j {
				break
			}
			items[i], items[j] = items[j], items[i]
		}
		// items[lo..j] precede-or-equal the pivot, items[j+1..) follow it.
		if k <= j+1 {
			hi = j + 1
		} else {
			lo = j + 1
		}
	}
	t.sortFoldItems(items[lo:hi])
}

// collectFold sweeps the slab once and gathers every live non-root node as
// a fold candidate — the cache-linear replacement for iterating the key
// index.
func (t *Tree) collectFold() []foldItem {
	items := t.fold[:0]
	for i := 1; i < len(t.slab); i++ {
		n := &t.slab[i]
		if n.depth < 0 {
			continue // free slot
		}
		items = append(items, foldItem{idx: int32(i), s: n.agg.ScoreWith(t.score), depth: n.depth})
	}
	return items
}

// CompressTo folds least-popular leaves into their parents until at most
// target nodes remain (Table II: Compress — "summarize the lower level
// nodes"). The root is never folded. Weight is preserved exactly; only the
// attribution granularity coarsens.
//
// The fold is a bulk sort-and-fold. The incremental formulation — maintain
// a min-heap of leaves, repeatedly fold the least popular one, cascading to
// parents that become new leaves — admits a closed form: a cascaded parent
// always scores at least its folded child (aggregates are monotone up the
// tree), so the heap's pop sequence is nondecreasing in score, and the set
// it folds is exactly the first len-target of all non-root nodes ordered by
// ascending score with descendants before ancestors on ties. That prefix is
// closed under taking descendants — no heap maintenance, no boxing, no
// revalidation churn, and trivially terminating where the cascade-round
// argument needs the leaf front to shrink the tree every round. Two
// execution strategies over one linear slab sweep exploit this: folding a
// minority of the tree quickselects and sorts just the fold prefix
// (O(n + k log k)), deleting each folded node in descendant-first order and
// parking its slot on the free list; folding a majority only partitions
// (O(n)) and rebuilds a compact slab from the survivors, handing the spike
// memory back.
func (t *Tree) CompressTo(target int) {
	if target < 1 {
		target = 1
	}
	k := t.live - target
	if k <= 0 {
		return
	}
	t.dirty()
	items := t.collectFold()
	if 2*k >= t.live {
		t.compressRebuild(items, k, target)
	} else {
		// The sequential fold needs items[:k] in fold order so that
		// descendants fold (and push their weight) before ancestors.
		t.prepareFold(items, k)
		for _, it := range items[:k] {
			n := &t.slab[it.idx]
			// Under the monotone-score contract n is always a leaf by the
			// time it is reached; a non-monotone score can violate that —
			// skip the fold instead of orphaning the children, and let
			// the cascade fallback below finish the job.
			if len(n.children) != 0 {
				continue
			}
			t.slab[n.parent].own.Add(n.own)
			t.removeChild(n.parent, it.idx)
			delete(t.nodes, n.key)
			n.depth = freeDepth
			t.free = append(t.free, it.idx)
			t.live--
		}
	}
	// Drop the scratch when a one-shot bulk fold left it drastically
	// oversized for the surviving tree (items are pointer-free, so a
	// retained backing array pins no nodes).
	if cap(items) > 4*t.live {
		items = nil
	}
	t.fold = items[:0]
	if t.live > target {
		// Only reachable under a contract-violating (non-monotone) score,
		// when the sequential fold had to skip prefix members with
		// surviving children. Fall back to the incremental cascade, which
		// reaches the target for any score.
		t.compressCascade(target)
	}
}

// compressRebuild is the majority fold: partition out the k least popular
// nodes (no order needed — the marker-based weight push and the survivor
// rebuild below are order-independent), then rebuild a compact slab, child
// arrays and key index from the target survivors — O(n) selection plus
// O(target) rebuild instead of an O(n log n) sort and O(k) deletes. The
// free list resets: every dead slot's memory is handed back with the old
// slab.
func (t *Tree) compressRebuild(items []foldItem, k, target int) {
	t.quickselectFold(items, k)
	// Mark the folded prefix (the nodes are discarded, their depth is free
	// as a marker), then push every folded node's own weight directly to
	// its nearest surviving ancestor. With a monotone score that ancestor
	// is simply the parent chain's first survivor, and the direct push
	// sums to exactly what transitive child-to-parent accumulation would;
	// under a contract-violating score it keeps the weight out of
	// discarded nodes.
	for _, it := range items[:k] {
		t.slab[it.idx].depth = freeDepth
	}
	for _, it := range items[:k] {
		p := t.slab[it.idx].parent
		for t.slab[p].depth < 0 {
			p = t.slab[p].parent
		}
		t.slab[p].own.Add(t.slab[it.idx].own)
	}
	survivors := items[k:]
	old := t.slab
	next := make([]node, 0, len(survivors)+1)
	next = append(next, old[rootIdx])
	next[rootIdx].children = nil
	// remap translates surviving old slab offsets to compact ones; folded
	// slots are never read from it.
	remap := make([]int32, len(old))
	remap[rootIdx] = rootIdx
	for _, it := range survivors {
		remap[it.idx] = int32(len(next))
		next = append(next, old[it.idx])
	}
	// Re-link parents against the old slab's chains: a monotone score
	// folds every descendant of a folded node, so the parent always
	// survives; under a non-monotone score it may not — reattach to the
	// nearest surviving ancestor (the root always survives) rather than
	// detach the subtree. Child arrays are rebuilt into one shared backing
	// array, then sorted per parent.
	counts := make([]int32, len(next))
	for j := 1; j < len(next); j++ {
		p := next[j].parent
		for old[p].depth < 0 {
			p = old[p].parent
		}
		next[j].parent = remap[p]
		counts[remap[p]]++
	}
	backing := make([]int32, len(next)-1)
	off := int32(0)
	for j := range next {
		n := int32(counts[j])
		if n == 0 {
			next[j].children = nil
			continue
		}
		next[j].children = backing[off : off : off+n]
		off += n
	}
	for j := 1; j < len(next); j++ {
		p := next[j].parent
		next[p].children = append(next[p].children, int32(j))
	}
	for j := range next {
		kids := next[j].children
		if len(kids) > 1 {
			slices.SortFunc(kids, func(a, b int32) int {
				if keyLess(next[a].key, next[b].key) {
					return -1
				}
				return 1
			})
		}
	}
	// Refill the index. Clearing retains its storage; only a drastically
	// oversized index is dropped for a right-sized one, so one-shot bulk
	// folds (decode, seal fan-in) hand the memory back while the steady
	// state stays allocation-free. A deferred index stays deferred — the
	// compact slab is exactly what index() would sweep.
	switch {
	case t.nodes == nil:
	case 4*target >= t.live:
		clear(t.nodes)
		for j := range next {
			t.nodes[next[j].key] = int32(j)
		}
	default:
		t.nodes = make(map[flow.Key]int32, target)
		for j := range next {
			t.nodes[next[j].key] = int32(j)
		}
	}
	t.slab = next
	t.live = len(next)
	t.free = t.free[:0]
}

// compressCascade is the order-robust fallback fold: round by round, the
// current leaves are sorted ascending by score and folded, with parents
// that lose their last child joining the next round. Every round folds at
// least one leaf (a tree above target always has a non-root leaf), so the
// target is always reached regardless of the score function. The sorted
// prefix fold in CompressTo is the fast path; this runs only when a
// non-monotone score defeats its closure argument.
func (t *Tree) compressCascade(target int) {
	round := t.fold[:0]
	for i := 1; i < len(t.slab); i++ {
		n := &t.slab[i]
		if n.depth >= 0 && n.isLeaf() {
			round = append(round, foldItem{idx: int32(i), s: n.agg.ScoreWith(t.score), depth: n.depth})
		}
	}
	var next []foldItem
	for t.live > target && len(round) > 0 {
		t.sortFoldItems(round)
		next = next[:0]
		for _, it := range round {
			if t.live <= target {
				break
			}
			n := &t.slab[it.idx]
			p := n.parent
			t.slab[p].own.Add(n.own)
			t.removeChild(p, it.idx)
			delete(t.nodes, n.key)
			n.depth = freeDepth
			t.free = append(t.free, it.idx)
			t.live--
			if p != rootIdx && t.slab[p].isLeaf() {
				next = append(next, foldItem{idx: p, s: t.slab[p].agg.ScoreWith(t.score), depth: t.slab[p].depth})
			}
		}
		round, next = next, round
	}
	t.fold = round[:0]
}

// Compress folds down to the configured budget target (no-op when
// unlimited).
func (t *Tree) Compress() {
	if t.budget > 0 {
		t.CompressTo(int(float64(t.budget) * t.compressTarget))
	}
}

// Merge joins another Flowtree into t (Table II: Merge — across time or
// location). Every node's own weight is added at its key; the node budget
// then re-compresses as needed, which is exactly the paper's
// "A12 = compress(A1 ∪ A2)" construction.
func (t *Tree) Merge(other *Tree) error {
	return t.MergeAll(other)
}

// MergeAll joins several Flowtrees into t with a single budget compression
// at the end, instead of one per merge. Sealing a sharded epoch fans N
// shard memtables together this way; compressing once over the union is
// both cheaper and no coarser than compressing after every constituent.
//
// The sources are streamed slab-linearly (tree order is irrelevant to a
// weight union), and aggregate propagation is deferred when profitable: the
// sources' own weights land first and t's aggregates are rebuilt with one
// bottom-up pass, instead of re-walking the ancestor chain per source node.
func (t *Tree) MergeAll(others ...*Tree) error {
	// Validate every tree before folding any weight in, so a mismatch
	// cannot leave t half-merged.
	total := 0
	for _, other := range others {
		if other == nil {
			continue
		}
		if other.stepBits != t.stepBits {
			return errors.New("flowtree: merging trees with different generalization steps")
		}
		total += other.live
	}
	if total == 0 {
		return nil
	}
	t.dirty()
	deferred := t.deferAgg(total)
	for _, other := range others {
		if other == nil {
			continue
		}
		// Key and weight are copied out before any insertion: ensure may
		// grow t's slab, and other may alias t (self-merge doubles every
		// weight, deterministically).
		limit := len(other.slab)
		for i := 0; i < limit; i++ {
			if other.slab[i].depth < 0 || other.slab[i].own.IsZero() {
				continue
			}
			key, own := other.slab[i].key, other.slab[i].own
			if deferred {
				ni := t.ensure(key)
				t.slab[ni].own.Add(own)
			} else {
				t.addCounters(key, own)
			}
		}
	}
	if deferred {
		t.recomputeAgg(rootIdx)
	}
	t.maybeCompress()
	return nil
}

// Diff subtracts the popularity of flows appearing in other from t
// (Table II: Diff). Subtraction is exact where both trees hold the same
// key and saturates at zero; weight held at keys absent from t is ignored
// (t has no information about flows it never saw).
func (t *Tree) Diff(other *Tree) error {
	if other == nil {
		return nil
	}
	if other.stepBits != t.stepBits {
		return errors.New("flowtree: diffing trees with different generalization steps")
	}
	t.dirty()
	for i := range other.slab {
		on := &other.slab[i]
		if on.depth < 0 || on.own.IsZero() {
			continue
		}
		if ni, ok := t.index()[on.key]; ok {
			t.slab[ni].own.Sub(on.own)
		}
	}
	t.recomputeAgg(rootIdx)
	return nil
}

// recomputeAgg rebuilds aggregate counters bottom-up after bulk own-weight
// edits. Recursion depth is bounded by the canonical chain length.
func (t *Tree) recomputeAgg(i int32) flow.Counters {
	n := &t.slab[i]
	agg := n.own
	for _, c := range n.children {
		agg.Add(t.recomputeAgg(c))
	}
	n.agg = agg
	return agg
}

// walk visits live nodes pre-order (parents before children); fn returning
// false prunes the subtree. fn must not mutate the tree (slab growth would
// invalidate the visited pointer).
func (t *Tree) walk(fn func(*node) bool) {
	var rec func(i int32)
	rec = func(i int32) {
		n := &t.slab[i]
		if !fn(n) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(rootIdx)
}

// Entry is one reported flow with its popularity.
type Entry struct {
	Key flow.Key
	// Counters is the popularity annotation (own + descendants unless
	// stated otherwise by the reporting operator).
	Counters flow.Counters
}

// Query returns the popularity score of a single flow (Table II: Query):
// the total weight of all stored flows that key generalizes. After
// compression the result is a lower bound — weight folded into ancestors
// coarser than key can no longer be attributed below it.
func (t *Tree) Query(key flow.Key) flow.Counters {
	var total flow.Counters
	var rec func(i int32)
	rec = func(i int32) {
		n := &t.slab[i]
		if key.Generalizes(n.key) {
			total.Add(n.agg)
			return
		}
		if !overlaps(key, n.key) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(rootIdx)
	return total
}

// overlaps reports whether some fully specific flow is contained in both
// keys.
func overlaps(a, b flow.Key) bool {
	minPfx := a.SrcPrefix
	if b.SrcPrefix < minPfx {
		minPfx = b.SrcPrefix
	}
	if a.SrcIP.Mask(minPfx) != b.SrcIP.Mask(minPfx) {
		return false
	}
	minPfx = a.DstPrefix
	if b.DstPrefix < minPfx {
		minPfx = b.DstPrefix
	}
	if a.DstIP.Mask(minPfx) != b.DstIP.Mask(minPfx) {
		return false
	}
	if !a.WildProto && !b.WildProto && a.Proto != b.Proto {
		return false
	}
	if !a.WildSrcPort && !b.WildSrcPort && a.SrcPort != b.SrcPort {
		return false
	}
	if !a.WildDstPort && !b.WildDstPort && a.DstPort != b.DstPort {
		return false
	}
	return true
}

// Drilldown returns the children of the node at key with their popularity
// scores (Table II: Drilldown), sorted by descending score. ok is false
// when key has no node (e.g. compressed away).
func (t *Tree) Drilldown(key flow.Key) ([]Entry, bool) {
	ni, exists := t.index()[key]
	if !exists {
		return nil, false
	}
	kids := t.slab[ni].children
	out := make([]Entry, 0, len(kids))
	for _, c := range kids {
		out = append(out, Entry{Key: t.slab[c].key, Counters: t.slab[c].agg})
	}
	t.sortEntries(out)
	return out, true
}

// TopK returns the k flows with the highest directly attributed popularity
// (Table II: Top-k). Ranking uses own weight (including weight folded in by
// compression) rather than subtree aggregates, which would always rank the
// root first.
func (t *Tree) TopK(k int) []Entry {
	if k <= 0 {
		return nil
	}
	out := make([]Entry, 0, t.live)
	for i := range t.slab {
		n := &t.slab[i]
		if n.depth >= 0 && !n.own.IsZero() {
			out = append(out, Entry{Key: n.key, Counters: n.own})
		}
	}
	t.sortEntries(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// AboveX returns all flows whose popularity score (own + descendants) is
// at least x under the tree's score function (Table II: Above-x).
func (t *Tree) AboveX(x uint64) []Entry {
	var out []Entry
	t.walk(func(n *node) bool {
		if n.agg.ScoreWith(t.score) >= x {
			out = append(out, Entry{Key: n.key, Counters: n.agg})
			return true
		}
		// Children can never exceed a parent's aggregate; prune.
		return false
	})
	t.sortEntries(out)
	return out
}

// HHHEntry is one hierarchical heavy hitter.
type HHHEntry struct {
	Key flow.Key
	// Counters is the full subtree weight.
	Counters flow.Counters
	// Discounted is the subtree score minus descendant HHHs, the value
	// compared against the threshold.
	Discounted uint64
}

// HHH returns all flows across the tree with a substantial popularity score
// (Table II: HHH): nodes whose subtree score, discounted by descendant
// heavy hitters, reaches phi * total.
func (t *Tree) HHH(phi float64) []HHHEntry {
	threshold := uint64(phi * float64(t.slab[rootIdx].agg.ScoreWith(t.score)))
	if threshold == 0 {
		threshold = 1
	}
	var out []HHHEntry
	var rec func(i int32) uint64
	rec = func(i int32) uint64 {
		n := &t.slab[i]
		var claimed uint64
		for _, c := range n.children {
			claimed += rec(c)
		}
		score := n.agg.ScoreWith(t.score)
		discounted := score - claimed
		if discounted >= threshold {
			out = append(out, HHHEntry{Key: n.key, Counters: n.agg, Discounted: discounted})
			return score
		}
		return claimed
	}
	rec(rootIdx)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Discounted != out[j].Discounted {
			return out[i].Discounted > out[j].Discounted
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}

// keyLess is an arbitrary-but-deterministic total order over keys used for
// stable tie-breaking (cheaper than comparing String renderings).
func keyLess(a, b flow.Key) bool {
	switch {
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	case a.Proto != b.Proto:
		return a.Proto < b.Proto
	case a.SrcPrefix != b.SrcPrefix:
		return a.SrcPrefix < b.SrcPrefix
	case a.DstPrefix != b.DstPrefix:
		return a.DstPrefix < b.DstPrefix
	case a.WildProto != b.WildProto:
		return !a.WildProto
	case a.WildSrcPort != b.WildSrcPort:
		return !a.WildSrcPort
	default:
		return !a.WildDstPort && b.WildDstPort
	}
}

func (t *Tree) sortEntries(entries []Entry) {
	sort.Slice(entries, func(i, j int) bool {
		si, sj := entries[i].Counters.ScoreWith(t.score), entries[j].Counters.ScoreWith(t.score)
		if si != sj {
			return si > sj
		}
		return keyLess(entries[i].Key, entries[j].Key)
	})
}

// rebuildEntries refreshes the cached wire-entry list: one linear slab
// sweep collecting every live node with non-zero own weight (keys
// normalized — a per-field mask that almost always no-ops, since tree keys
// come from normalized record keys), then one keyLess sort.
func (t *Tree) rebuildEntries() {
	out := t.entries[:0]
	for i := range t.slab {
		n := &t.slab[i]
		if n.depth < 0 || n.own.IsZero() {
			continue
		}
		out = append(out, Entry{Key: n.key.Normalized(), Counters: n.own})
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	t.entries = out
	t.entriesOK = true
}

// wireEntries returns the cached sorted entry list the wire codecs encode
// against, rebuilding it only if the tree mutated since the last call.
// Callers must treat the slice as read-only and must not hold it across a
// mutation.
func (t *Tree) wireEntries() []Entry {
	if !t.entriesOK {
		t.rebuildEntries()
	}
	return t.entries
}

// Entries returns every node with non-zero own weight (the tree's exact
// content at current granularity) with normalized keys in the
// deterministic keyLess order — the order the v2 wire codec
// prefix-delta-encodes against. The sorted list is cached between
// mutations, so repeated calls on an unchanged tree cost one copy, not one
// sort.
func (t *Tree) Entries() []Entry {
	return slices.Clone(t.wireEntries())
}

// Clone returns a deep copy of the tree: the slab is copied wholesale
// (one memcpy — nodes are index-linked, so the copy needs no pointer
// fixup) and the child-index arrays are re-sliced out of a single shared
// backing array; the key index is deferred and rebuilt from the slab only
// if the clone is ever mutated or point-queried. The copy shares no
// mutable state with t, including scratch buffers and the entry cache. A
// handful of allocations regardless of tree size: clones are taken on hot
// paths (shard snapshots per live query, FlowDB memo-cache hits), where
// one allocation per node dominated the copy cost — and most of those
// clones are read-only, so they never pay for the index at all.
func (t *Tree) Clone() *Tree {
	cp := &Tree{
		budget:         t.budget,
		stepBits:       t.stepBits,
		compressTarget: t.compressTarget,
		score:          t.score,
		live:           t.live,
		inserted:       t.inserted,
	}
	cp.slab = make([]node, len(t.slab))
	copy(cp.slab, t.slab)
	total := 0
	for i := range t.slab {
		if t.slab[i].depth >= 0 {
			total += len(t.slab[i].children)
		}
	}
	backing := make([]int32, 0, total)
	for i := range cp.slab {
		n := &cp.slab[i]
		if n.depth < 0 || len(n.children) == 0 {
			// Dead slots drop their (aliased) child capacity; alloc
			// restores an empty array on reuse.
			n.children = nil
			continue
		}
		start := len(backing)
		backing = append(backing, n.children...)
		n.children = backing[start:len(backing):len(backing)]
	}
	if len(t.free) > 0 {
		cp.free = slices.Clone(t.free)
	}
	if t.entriesOK {
		cp.entries = slices.Clone(t.entries)
		cp.entriesOK = true
	}
	return cp
}

// StepBits returns the generalization step.
func (t *Tree) StepBits() uint8 { return t.stepBits }
