package flowtree

import (
	"bytes"
	"testing"
	"testing/quick"

	"megadata/internal/flow"
)

// buildTree grows an unbudgeted tree from pseudo-random records derived
// from xs (reusing the generator the property tests share).
func buildTree(t *testing.T, xs []uint32) *Tree {
	t.Helper()
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		tr.Add(randomRecord(x, x*31, uint16(x), uint16(x>>7), x%4096))
	}
	return tr
}

// entriesEqual compares the exact weighted content of two trees.
func entriesEqual(a, b *Tree) bool {
	ea, eb := a.Entries(), b.Entries()
	if len(ea) != len(eb) {
		return false
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

// Property: SizeBytes matches the serialized length byte for byte, in both
// wire versions.
func TestPropWireSizeMatchesEncoding(t *testing.T) {
	f := func(xs []uint32) bool {
		tr := buildTree(t, xs)
		for _, v := range []byte{WireV1, WireV2} {
			buf, err := tr.AppendBinaryV(nil, v)
			if err != nil {
				return false
			}
			n, err := tr.WireSizeBytes(v)
			if err != nil || n != uint64(len(buf)) {
				t.Logf("v%d: SizeBytes=%d len=%d", v, n, len(buf))
				return false
			}
		}
		// SizeBytes is the current emit version (v2 == AppendBinary).
		return tr.SizeBytes() == uint64(len(tr.AppendBinary(nil)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: v2 encode -> decode round-trips the exact weighted entries.
func TestPropV2RoundTripExact(t *testing.T) {
	f := func(xs []uint32) bool {
		tr := buildTree(t, xs)
		buf := tr.AppendBinary(nil)
		back, err := Decode(buf, 0)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		return entriesEqual(tr, back) && back.StepBits() == tr.StepBits()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: v1 blobs still decode (back-compat) and agree with v2 decodes
// of the same tree.
func TestPropV1BackCompat(t *testing.T) {
	f := func(xs []uint32) bool {
		tr := buildTree(t, xs)
		v1, err := tr.AppendBinaryV(nil, WireV1)
		if err != nil {
			return false
		}
		if v1[4] != WireV1 {
			return false
		}
		back, err := Decode(v1, 0)
		if err != nil {
			t.Logf("v1 decode: %v", err)
			return false
		}
		return entriesEqual(tr, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestV1WireLayoutFrozen pins the v1 layout to the pre-v2 fixed-width
// encoding: a header plus 40 bytes per weighted node, keys encoded exactly
// as flow.Key.AppendBinary. Old stored blobs must keep decoding forever.
func TestV1WireLayoutFrozen(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	rec := flow.Record{Key: flow.Exact(flow.ProtoTCP, 0x0A000001, 0xC0A80101, 40000, 443), Packets: 3, Bytes: 1200}
	tr.Add(rec)
	buf, err := tr.AppendBinaryV(nil, WireV1)
	if err != nil {
		t.Fatal(err)
	}
	// Ancestors carry no own weight: exactly one 40-byte record after the
	// 6-byte header and 8-byte count.
	if len(buf) != 6+8+40 {
		t.Fatalf("v1 blob is %d bytes, want %d", len(buf), 6+8+40)
	}
	wantKey := rec.Key.AppendBinary(nil)
	if !bytes.Equal(buf[14:30], wantKey) {
		t.Errorf("v1 key bytes = %x, want %x", buf[14:30], wantKey)
	}
}

// TestV2SmallerThanV1 checks the codec's reason to exist on a clustered
// key set: the compact encoding must come in well under the fixed-width
// one (the WAN-byte acceptance bound lives in flowstream, asserted through
// WANBytes on the workload generator's default mix).
func TestV2SmallerThanV1(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 2000; i++ {
		tr.Add(randomRecord(i%257, i*7, uint16(i%100), 443, i%5000))
	}
	v1, _ := tr.WireSizeBytes(WireV1)
	v2, _ := tr.WireSizeBytes(WireV2)
	if v2*10 > v1*7 {
		t.Errorf("v2 %dB is not <=70%% of v1 %dB", v2, v1)
	}
}

// TestDecodeV2Malformed exercises the v2 decoder's validation paths.
func TestDecodeV2Malformed(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoUDP, 0x01020304, 0x05060708, 53, 5353), Packets: 1, Bytes: 99})
	good := tr.AppendBinary(nil)
	if _, err := Decode(good, 0); err != nil {
		t.Fatalf("good blob: %v", err)
	}
	for name, mut := range map[string]func([]byte) []byte{
		"truncated body":   func(b []byte) []byte { return b[:len(b)-2] },
		"trailing bytes":   func(b []byte) []byte { return append(append([]byte{}, b...), 0) },
		"reserved flag":    func(b []byte) []byte { c := append([]byte{}, b...); c[7] |= 0x80; return c },
		"oversized count":  func(b []byte) []byte { c := append([]byte{}, b...); c[6] = 0xff; return c[:7] },
		"unknown version":  func(b []byte) []byte { c := append([]byte{}, b...); c[4] = 9; return c },
		"truncated header": func(b []byte) []byte { return b[:4] },
	} {
		if _, err := Decode(mut(good), 0); err == nil {
			t.Errorf("%s: decode accepted malformed blob", name)
		}
	}
}

// TestAppendBinaryVUnknownVersion rejects versions the codec cannot emit.
func TestAppendBinaryVUnknownVersion(t *testing.T) {
	tr, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AppendBinaryV(nil, 3); err == nil {
		t.Error("AppendBinaryV(3) must error")
	}
	if _, err := tr.WireSizeBytes(0); err == nil {
		t.Error("WireSizeBytes(0) must error")
	}
}
