package flowtree

import (
	"sort"
	"testing"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

// topKRecall measures how many of the true top-k exact flows (by bytes)
// survive in a budgeted tree's TopK report (experiment E4: "distinguish
// heavy hitters from non-popular flows").
func topKRecall(t *testing.T, budget, k int) float64 {
	t.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 77, Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(30000)
	tree, err := New(budget)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[flow.Key]uint64)
	for _, r := range recs {
		tree.Add(r)
		truth[r.Key] += r.Bytes
	}
	type kv struct {
		k flow.Key
		v uint64
	}
	sorted := make([]kv, 0, len(truth))
	for key, v := range truth {
		sorted = append(sorted, kv{k: key, v: v})
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].v > sorted[j].v })
	if len(sorted) > k {
		sorted = sorted[:k]
	}
	reported := tree.TopK(2 * k)
	var hit int
	for _, kv := range sorted {
		// A true heavy flow counts as distinguished when a reported
		// top entry covers it at some surviving granularity other than
		// the root: compression may have folded the exact 5-tuple into
		// a nearby generalization, but the paper only asks that heavy
		// hitters remain distinguishable from non-popular flows.
		for _, e := range reported {
			if !e.Key.IsRoot() && e.Key.Generalizes(kv.k) {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(sorted))
}

// prefixQueryError measures the mean relative error of Query over /16
// source prefixes against an uncompressed tree.
func prefixQueryError(t *testing.T, budget int) float64 {
	t.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 78, Skew: 1.1})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(20000)
	full, _ := New(0)
	small, err := New(budget)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		full.Add(r)
		small.Add(r)
	}
	probes := map[flow.Key]bool{}
	for _, r := range recs[:500] {
		k := flow.Key{SrcIP: r.Key.SrcIP.Mask(16), SrcPrefix: 16, WildProto: true, WildSrcPort: true, WildDstPort: true}
		probes[k] = true
	}
	var errSum float64
	var n int
	for k := range probes {
		truth := full.Query(k).Bytes
		if truth == 0 {
			continue
		}
		approx := small.Query(k).Bytes
		if approx > truth {
			t.Fatalf("compressed Query exceeds truth at %v: %d > %d", k, approx, truth)
		}
		errSum += float64(truth-approx) / float64(truth)
		n++
	}
	if n == 0 {
		t.Fatal("no probes")
	}
	return errSum / float64(n)
}

func TestTopKRecallImprovesWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep is slow")
	}
	rSmall := topKRecall(t, 256, 50)
	rLarge := topKRecall(t, 8192, 50)
	if rLarge < rSmall-0.05 {
		t.Errorf("recall must not degrade with budget: small=%.2f large=%.2f", rSmall, rLarge)
	}
	if rLarge < 0.8 {
		t.Errorf("top-k recall at generous budget too low: %.2f", rLarge)
	}
}

func TestPrefixQueryErrorShrinksWithBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep is slow")
	}
	eSmall := prefixQueryError(t, 512)
	eLarge := prefixQueryError(t, 8192)
	if eLarge > eSmall+0.05 {
		t.Errorf("error must not grow with budget: small=%.3f large=%.3f", eSmall, eLarge)
	}
	if eLarge > 0.5 {
		t.Errorf("query error at generous budget too high: %.3f", eLarge)
	}
}

func TestCompressionMemoryShape(t *testing.T) {
	// E2/E4 shape: a budgeted tree must be dramatically smaller than the
	// exact tree on skewed traffic while keeping the total.
	g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: 79, Skew: 1.1})
	recs := g.Records(30000)
	full, _ := New(0)
	small, _ := New(2048)
	for _, r := range recs {
		full.Add(r)
		small.Add(r)
	}
	if small.SizeBytes()*4 > full.SizeBytes() {
		t.Errorf("budgeted tree %dB not clearly smaller than full %dB", small.SizeBytes(), full.SizeBytes())
	}
	if small.Total() != full.Total() {
		t.Error("totals diverged")
	}
}
