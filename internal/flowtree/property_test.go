package flowtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"megadata/internal/flow"
)

// randomRecord builds an exact record from raw generator values, clustering
// addresses so that chains share structure.
func randomRecord(src, dst uint32, sport, dport uint16, bytes uint32) flow.Record {
	return flow.Record{
		Key:     flow.Exact(flow.ProtoTCP, flow.IPv4(src&0x00FFFFFF|0x0A000000), flow.IPv4(dst&0x0000FFFF|0xC0A80000), sport, dport),
		Packets: uint64(bytes/1000) + 1,
		Bytes:   uint64(bytes) + 1,
	}
}

// Property: the root aggregate always equals the sum of inserted counters,
// regardless of insert order, duplication, or compression.
func TestPropTotalConservation(t *testing.T) {
	f := func(seeds []uint32) bool {
		tr, err := New(256)
		if err != nil {
			return false
		}
		var want flow.Counters
		rng := rand.New(rand.NewSource(1))
		for _, s := range seeds {
			r := randomRecord(s, s*2654435761, uint16(s), uint16(s>>16), s%100000)
			tr.Add(r)
			want.Add(flow.CountersOf(r))
			if rng.Intn(20) == 0 {
				tr.CompressTo(64)
			}
		}
		return tr.Total() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Merge is commutative in the totals and exact-key queries.
func TestPropMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint32) bool {
		a1, _ := New(0)
		b1, _ := New(0)
		a2, _ := New(0)
		b2, _ := New(0)
		var keys []flow.Key
		for _, x := range xs {
			r := randomRecord(x, x^0xDEAD, uint16(x), 443, x%10000)
			a1.Add(r)
			a2.Add(r)
			keys = append(keys, r.Key)
		}
		for _, y := range ys {
			r := randomRecord(y, y^0xBEEF, uint16(y), 80, y%10000)
			b1.Add(r)
			b2.Add(r)
			keys = append(keys, r.Key)
		}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		if a1.Total() != b2.Total() {
			return false
		}
		for _, k := range keys {
			if a1.Query(k) != b2.Query(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Query at any generalization of an inserted key is at least the
// weight inserted under that key (monotonicity along the lattice) as long
// as no compression happened.
func TestPropQueryMonotoneOnChain(t *testing.T) {
	f := func(xs []uint32) bool {
		tr, _ := New(0)
		for _, x := range xs {
			tr.Add(randomRecord(x, x*31, uint16(x%1000), 443, x%1000))
		}
		for _, x := range xs {
			r := randomRecord(x, x*31, uint16(x%1000), 443, x%1000)
			exact := tr.Query(r.Key)
			for _, anc := range r.Key.Chain(8) {
				up := tr.Query(anc)
				if up.Bytes < exact.Bytes || up.Flows < exact.Flows {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: compression never loses total weight and never exceeds the
// requested node count.
func TestPropCompressBounded(t *testing.T) {
	f := func(xs []uint32, target8 uint8) bool {
		target := int(target8)%200 + 2
		tr, _ := New(0)
		for _, x := range xs {
			tr.Add(randomRecord(x, x*7, uint16(x), uint16(x>>8), x%5000))
		}
		before := tr.Total()
		tr.CompressTo(target)
		return tr.Len() <= max(target, 1) && tr.Total() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialization round-trips totals and exact queries.
func TestPropCodecRoundTrip(t *testing.T) {
	f := func(xs []uint32) bool {
		tr, _ := New(0)
		var keys []flow.Key
		for _, x := range xs {
			r := randomRecord(x, x*13, uint16(x), 443, x%3000)
			tr.Add(r)
			keys = append(keys, r.Key)
		}
		buf := tr.AppendBinary(nil)
		if uint64(len(buf)) != tr.SizeBytes() {
			return false
		}
		back, err := Decode(buf, 0)
		if err != nil {
			return false
		}
		if back.Total() != tr.Total() {
			return false
		}
		for _, k := range keys {
			if back.Query(k) != tr.Query(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Diff(self) empties every exact key it knows about.
func TestPropDiffSelfIsZero(t *testing.T) {
	f := func(xs []uint32) bool {
		tr, _ := New(0)
		var keys []flow.Key
		for _, x := range xs {
			r := randomRecord(x, x*17, uint16(x), 22, x%9999)
			tr.Add(r)
			keys = append(keys, r.Key)
		}
		cp := tr.Clone()
		if err := tr.Diff(cp); err != nil {
			return false
		}
		for _, k := range keys {
			if !tr.Query(k).IsZero() {
				return false
			}
		}
		return tr.Total().IsZero()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: serial Add and AddBatch with deferred aggregation produce
// identical trees at unlimited budget — same totals, same node set, same
// aggregates — regardless of how the records are chunked.
func TestPropAddBatchEquivSerial(t *testing.T) {
	f := func(xs []uint32, chunk8 uint8) bool {
		chunk := int(chunk8)%7 + 1 // small chunks exercise the incremental path, big ones the deferred path
		serial, _ := New(0)
		batched, _ := New(0)
		whole, _ := New(0)
		recs := make([]flow.Record, 0, len(xs))
		for _, x := range xs {
			r := randomRecord(x, x*2654435761, uint16(x), uint16(x>>16), x%100000)
			recs = append(recs, r)
			serial.Add(r)
		}
		for off := 0; off < len(recs); off += chunk {
			batched.AddBatch(recs[off:min(off+chunk, len(recs))])
		}
		whole.AddBatch(recs)
		for _, tr := range []*Tree{batched, whole} {
			if tr.Total() != serial.Total() || tr.Len() != serial.Len() || tr.Inserted() != serial.Inserted() {
				return false
			}
			for _, r := range recs {
				if tr.Query(r.Key) != serial.Query(r.Key) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: on a budgeted tree, AddBatch conserves totals and respects the
// budget exactly like serial Add (attribution may differ with compression
// timing, totals and the budget may not).
func TestPropAddBatchBudgeted(t *testing.T) {
	f := func(xs []uint32) bool {
		serial, _ := New(128)
		batched, _ := New(128)
		recs := make([]flow.Record, 0, len(xs))
		for _, x := range xs {
			r := randomRecord(x, x*31, uint16(x), uint16(x>>8), x%5000)
			recs = append(recs, r)
			serial.Add(r)
		}
		batched.AddBatch(recs)
		return batched.Total() == serial.Total() &&
			batched.Len() <= 128 && serial.Len() <= 128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is a faithful structural copy — identical totals, node
// count, and queries — and fully independent of the original.
func TestPropCloneEquivalent(t *testing.T) {
	f := func(xs []uint32) bool {
		tr, _ := New(256)
		var keys []flow.Key
		rng := rand.New(rand.NewSource(2))
		for _, x := range xs {
			r := randomRecord(x, x*13, uint16(x), 443, x%20000)
			tr.Add(r)
			keys = append(keys, r.Key)
			if rng.Intn(16) == 0 {
				tr.CompressTo(64)
			}
		}
		cp := tr.Clone()
		if cp.Total() != tr.Total() || cp.Len() != tr.Len() || cp.Inserted() != tr.Inserted() {
			return false
		}
		for _, k := range keys {
			if cp.Query(k) != tr.Query(k) {
				return false
			}
		}
		// Mutating the copy must not leak into the original.
		before := tr.Total()
		cp.Add(randomRecord(1, 2, 3, 4, 5))
		cp.CompressTo(2)
		return tr.Total() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: MergeAll equals sequential Merge at unlimited budget (the
// sharded seal fan-in answers exactly like merging shards one by one).
func TestPropMergeAllEquivSequential(t *testing.T) {
	f := func(xs, ys, zs []uint32) bool {
		build := func(seeds []uint32, salt uint32) *Tree {
			tr, _ := New(0)
			for _, s := range seeds {
				tr.Add(randomRecord(s, s^salt, uint16(s), 443, s%10000))
			}
			return tr
		}
		a, b, c := build(xs, 0xDEAD), build(ys, 0xBEEF), build(zs, 0xF00D)
		bulk, _ := New(0)
		seq, _ := New(0)
		if err := bulk.MergeAll(a, b, c); err != nil {
			return false
		}
		for _, src := range []*Tree{a, b, c} {
			if err := seq.Merge(src); err != nil {
				return false
			}
		}
		if bulk.Total() != seq.Total() || bulk.Len() != seq.Len() {
			return false
		}
		for _, src := range []*Tree{a, b, c} {
			for _, e := range src.Entries() {
				if bulk.Query(e.Key) != seq.Query(e.Key) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Decode(nil, 0); err == nil {
		t.Error("empty buffer must error")
	}
	tr, _ := New(0)
	tr.Add(randomRecord(1, 2, 3, 4, 5))
	buf := tr.AppendBinary(nil)
	bad := make([]byte, len(buf))
	copy(bad, buf)
	bad[0] = 0xFF // magic
	if _, err := Decode(bad, 0); err == nil {
		t.Error("bad magic must error")
	}
	copy(bad, buf)
	bad[4] = 99 // version
	if _, err := Decode(bad, 0); err == nil {
		t.Error("bad version must error")
	}
	if _, err := Decode(buf[:len(buf)-5], 0); err == nil {
		t.Error("truncated body must error")
	}
}
