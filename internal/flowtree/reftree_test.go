package flowtree

// The pointer-based Flowtree the arena slab replaced, kept test-only as the
// differential reference: refTree is the pre-arena implementation (nodes as
// individually heap-allocated structs linked by pointers, child sets as
// maps, a map[flow.Key]*refNode index) with the same operator semantics,
// the same deferred-aggregation heuristics, and — critically — the same
// deterministic fold order (ascending score, deeper first, keyLess last),
// so CompressTo folds the exact same node set and differential tests can
// demand exact equality of entries, aggregates and wire bytes, not just
// invariants. See differential_test.go for the harness.

import (
	"encoding/binary"
	"hash/fnv"
	"slices"
	"sort"

	"megadata/internal/flow"
)

type refNode struct {
	key      flow.Key
	own      flow.Counters
	agg      flow.Counters
	parent   *refNode
	children map[flow.Key]*refNode
	depth    int32
}

func (n *refNode) isLeaf() bool { return len(n.children) == 0 }

type refTree struct {
	budget         int
	stepBits       uint8
	compressTarget float64
	score          flow.Score
	root           *refNode
	nodes          map[flow.Key]*refNode
}

func newRefTree(budget int, stepBits uint8, score flow.Score) *refTree {
	t := &refTree{
		budget:         budget,
		stepBits:       stepBits,
		compressTarget: 0.75,
		score:          score,
	}
	if t.score == nil {
		t.score = flow.ScoreBytes
	}
	t.root = &refNode{key: flow.Root()}
	t.nodes = map[flow.Key]*refNode{t.root.key: t.root}
	return t
}

func (t *refTree) chainDepth() int { return 3 + 2*(31/int(t.stepBits)+1) }

func (t *refTree) deferAgg(n int) bool {
	const rebuildCostFactor = 20
	return n*t.chainDepth() >= rebuildCostFactor*len(t.nodes)
}

func (t *refTree) ensure(key flow.Key) *refNode {
	if n, ok := t.nodes[key]; ok {
		return n
	}
	missing := []flow.Key{key}
	var attach *refNode
	cur := key
	for {
		parent, ok := cur.GeneralizeStep(t.stepBits)
		if !ok {
			attach = t.root
			break
		}
		if p, exists := t.nodes[parent]; exists {
			attach = p
			break
		}
		missing = append(missing, parent)
		cur = parent
	}
	for i := len(missing) - 1; i >= 0; i-- {
		n := &refNode{key: missing[i], parent: attach, depth: attach.depth + 1}
		if attach.children == nil {
			attach.children = make(map[flow.Key]*refNode, 2)
		}
		attach.children[n.key] = n
		t.nodes[n.key] = n
		attach = n
	}
	return attach
}

func (t *refTree) addCounters(key flow.Key, c flow.Counters) {
	n := t.ensure(key)
	n.own.Add(c)
	for cur := n; cur != nil; cur = cur.parent {
		cur.agg.Add(c)
	}
}

func (t *refTree) add(rec flow.Record) {
	t.addCounters(rec.Key, flow.CountersOf(rec))
	t.maybeCompress()
}

func (t *refTree) addBatch(recs []flow.Record) {
	if len(recs) == 0 {
		return
	}
	if t.deferAgg(len(recs)) {
		for _, r := range recs {
			t.ensure(r.Key).own.Add(flow.CountersOf(r))
		}
		t.recomputeAgg(t.root)
	} else {
		for _, r := range recs {
			t.addCounters(r.Key, flow.CountersOf(r))
		}
	}
	t.maybeCompress()
}

func (t *refTree) addWeighted(key flow.Key, c flow.Counters) {
	t.addCounters(key, c)
	t.maybeCompress()
}

func (t *refTree) mergeAll(others ...*refTree) {
	total := 0
	for _, other := range others {
		total += len(other.nodes)
	}
	if total == 0 {
		return
	}
	deferred := t.deferAgg(total)
	for _, other := range others {
		other.walk(func(n *refNode) bool {
			if !n.own.IsZero() {
				if deferred {
					t.ensure(n.key).own.Add(n.own)
				} else {
					t.addCounters(n.key, n.own)
				}
			}
			return true
		})
	}
	if deferred {
		t.recomputeAgg(t.root)
	}
	t.maybeCompress()
}

func (t *refTree) diff(other *refTree) {
	other.walk(func(on *refNode) bool {
		if on.own.IsZero() {
			return true
		}
		if n, ok := t.nodes[on.key]; ok {
			n.own.Sub(on.own)
		}
		return true
	})
	t.recomputeAgg(t.root)
}

func (t *refTree) recomputeAgg(n *refNode) flow.Counters {
	agg := n.own
	for _, c := range n.children {
		agg.Add(t.recomputeAgg(c))
	}
	n.agg = agg
	return agg
}

func (t *refTree) walk(fn func(*refNode) bool) {
	var rec func(*refNode)
	rec = func(n *refNode) {
		if !fn(n) {
			return
		}
		for _, c := range n.children {
			rec(c)
		}
	}
	rec(t.root)
}

func (t *refTree) total() flow.Counters { return t.root.agg }
func (t *refTree) len() int             { return len(t.nodes) }

func (t *refTree) maybeCompress() {
	if t.budget > 0 && len(t.nodes) > t.budget {
		t.compressTo(int(float64(t.budget) * t.compressTarget))
	}
}

type refTreeFoldItem struct {
	n *refNode
	s uint64
}

// refCmpFold mirrors the arena's cmpFold exactly: ascending score, deeper
// first on ties, keyLess as the final tie-break. Identical strict order ⇒
// identical fold sets ⇒ exact differential equality after compression.
func refCmpFold(a, b refTreeFoldItem) int {
	switch {
	case a.s != b.s:
		if a.s < b.s {
			return -1
		}
		return 1
	case a.n.depth != b.n.depth:
		if a.n.depth > b.n.depth {
			return -1
		}
		return 1
	case keyLess(a.n.key, b.n.key):
		return -1
	default:
		return 1
	}
}

// compressTo is the pre-arena sort-and-fold, pointer edition: identical
// fold-order contract, majority rebuild path and minority sequential path.
func (t *refTree) compressTo(target int) {
	if target < 1 {
		target = 1
	}
	k := len(t.nodes) - target
	if k <= 0 {
		return
	}
	items := make([]refTreeFoldItem, 0, len(t.nodes)-1)
	for _, n := range t.nodes {
		if n != t.root {
			items = append(items, refTreeFoldItem{n: n, s: n.agg.ScoreWith(t.score)})
		}
	}
	slices.SortFunc(items, refCmpFold)
	if 2*k >= len(t.nodes) {
		for _, it := range items[:k] {
			it.n.depth = -1
		}
		for _, it := range items[:k] {
			p := it.n.parent
			for p.depth < 0 {
				p = p.parent
			}
			p.own.Add(it.n.own)
		}
		nodes := make(map[flow.Key]*refNode, target)
		nodes[t.root.key] = t.root
		clear(t.root.children)
		for _, it := range items[k:] {
			clear(it.n.children)
			nodes[it.n.key] = it.n
		}
		for _, it := range items[k:] {
			n := it.n
			p := n.parent
			for p.depth < 0 {
				p = p.parent
			}
			n.parent = p
			if p.children == nil {
				p.children = make(map[flow.Key]*refNode, 2)
			}
			p.children[n.key] = n
		}
		t.nodes = nodes
	} else {
		for _, it := range items[:k] {
			n := it.n
			if len(n.children) != 0 {
				continue
			}
			p := n.parent
			p.own.Add(n.own)
			delete(p.children, n.key)
			delete(t.nodes, n.key)
		}
	}
	if len(t.nodes) > target {
		t.compressCascade(target)
	}
}

func (t *refTree) compressCascade(target int) {
	var round []refTreeFoldItem
	for _, n := range t.nodes {
		if n != t.root && n.isLeaf() {
			round = append(round, refTreeFoldItem{n: n, s: n.agg.ScoreWith(t.score)})
		}
	}
	var next []refTreeFoldItem
	for len(t.nodes) > target && len(round) > 0 {
		slices.SortFunc(round, refCmpFold)
		next = next[:0]
		for _, it := range round {
			if len(t.nodes) <= target {
				break
			}
			n := it.n
			p := n.parent
			p.own.Add(n.own)
			delete(p.children, n.key)
			delete(t.nodes, n.key)
			if p != t.root && p.isLeaf() {
				next = append(next, refTreeFoldItem{n: p, s: p.agg.ScoreWith(t.score)})
			}
		}
		round, next = next, round
	}
}

func (t *refTree) clone() *refTree {
	cp := newRefTree(t.budget, t.stepBits, t.score)
	cp.compressTarget = t.compressTarget
	// Structural copy, not a re-insert: compression reattaches survivors to
	// their nearest surviving ancestor, so a node's canonical chain may have
	// gaps that ensure() would wrongly resurrect. Copy edges as they are.
	var rec func(src *refNode, parent *refNode) *refNode
	rec = func(src, parent *refNode) *refNode {
		// depth is copied verbatim: compression reattaches survivors to an
		// ancestor without re-depthing them, so depth is not parent+1.
		n := &refNode{key: src.key, own: src.own, agg: src.agg, parent: parent, depth: src.depth}
		cp.nodes[n.key] = n
		for _, c := range src.children {
			if n.children == nil {
				n.children = make(map[flow.Key]*refNode, len(src.children))
			}
			n.children[c.key] = rec(c, n)
		}
		return n
	}
	cp.root = rec(t.root, nil)
	return cp
}

// entries mirrors wireEntries: weighted nodes, normalized keys, keyLess
// order.
func (t *refTree) entries() []Entry {
	var out []Entry
	t.walk(func(n *refNode) bool {
		if !n.own.IsZero() {
			out = append(out, Entry{Key: n.key.Normalized(), Counters: n.own})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i].Key, out[j].Key) })
	return out
}

// refAppendHeader / refEncodeV1 / refEncodeV2 / refDeltaHash /
// refAppendDelta rebuild the wire frames from a plain entry list through
// the shared low-level appenders (v2AppendEntry, v2AppendKey), so the
// reference bytes share no tree code with the arena encoders.

func refAppendHeader(dst []byte, version byte, stepBits uint8) []byte {
	var hdr [wireHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:], _wireMagic)
	hdr[4] = version
	hdr[5] = stepBits
	return append(dst, hdr[:]...)
}

func refEncodeV1(entries []Entry, stepBits uint8) []byte {
	dst := refAppendHeader(nil, WireV1, stepBits)
	var cnt [8]byte
	binary.BigEndian.PutUint64(cnt[:], uint64(len(entries)))
	dst = append(dst, cnt[:]...)
	for _, e := range entries {
		dst = e.Key.AppendBinary(dst)
		var c [24]byte
		binary.BigEndian.PutUint64(c[0:], e.Counters.Packets)
		binary.BigEndian.PutUint64(c[8:], e.Counters.Bytes)
		binary.BigEndian.PutUint64(c[16:], e.Counters.Flows)
		dst = append(dst, c[:]...)
	}
	return dst
}

func refEncodeV2(entries []Entry, stepBits uint8) []byte {
	dst := refAppendHeader(nil, WireV2, stepBits)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	var prev flow.Key
	for _, e := range entries {
		dst = v2AppendEntry(dst, prev, e)
		prev = e.Key
	}
	return dst
}

func refDeltaHash(entries []Entry, stepBits uint8) uint64 {
	h := fnv.New64a()
	var buf [24]byte
	buf[0] = stepBits
	h.Write(buf[:1])
	key := make([]byte, 0, 16)
	for _, e := range entries {
		key = e.Key.AppendBinary(key[:0])
		h.Write(key)
		binary.BigEndian.PutUint64(buf[0:], e.Counters.Packets)
		binary.BigEndian.PutUint64(buf[8:], e.Counters.Bytes)
		binary.BigEndian.PutUint64(buf[16:], e.Counters.Flows)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func refAppendDelta(cur, base []Entry, stepBits uint8) []byte {
	d := diffEntries(cur, base)
	dst := refAppendHeader(nil, WireV3, stepBits)
	var hb [deltaHashSize]byte
	binary.BigEndian.PutUint64(hb[:], refDeltaHash(base, stepBits))
	dst = append(dst, hb[:]...)
	dst = binary.AppendUvarint(dst, uint64(len(d.changed)))
	var prev flow.Key
	for _, e := range d.changed {
		dst = v2AppendEntry(dst, prev, e)
		prev = e.Key
	}
	dst = binary.AppendUvarint(dst, uint64(len(d.removed)))
	prev = flow.Key{}
	for _, k := range d.removed {
		dst = v2AppendKey(dst, prev, k)
		prev = k
	}
	return dst
}

// refFromEntries mirrors Decode's semantics on the reference tree: every
// wire entry lands as own weight, aggregates rebuild bottom-up once, then
// the budget is enforced — the post-Decode differential baseline.
func refFromEntries(entries []Entry, budget int, stepBits uint8, score flow.Score) *refTree {
	t := newRefTree(budget, stepBits, score)
	for _, e := range entries {
		t.ensure(e.Key).own.Add(e.Counters)
	}
	t.recomputeAgg(t.root)
	t.maybeCompress()
	return t
}
