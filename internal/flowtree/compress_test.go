package flowtree

import (
	"container/heap"
	"fmt"
	"runtime"
	"testing"
	"testing/quick"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

// refFoldHeap is the pre-PR2 container/heap fold, kept as the equivalence
// baseline and benchmark reference for the sort-based CompressTo: entries
// may be stale and are revalidated when popped. Ported from node pointers
// to slab indices with the arena rewrite; the fold logic is unchanged.
type refFoldHeap struct {
	items []refFoldItem
}

type refFoldItem struct {
	i int32
	s uint64
}

func (h refFoldHeap) Len() int            { return len(h.items) }
func (h refFoldHeap) Less(i, j int) bool  { return h.items[i].s < h.items[j].s }
func (h refFoldHeap) Swap(i, j int)       { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *refFoldHeap) Push(x interface{}) { h.items = append(h.items, x.(refFoldItem)) }
func (h *refFoldHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// compressToHeap is the heap-based incremental fold the sort-based
// CompressTo replaced: fold the least popular leaf, cascading to parents
// that become new leaves. It never inserts nodes, so slab indices held in
// the heap stay valid across folds (dead slots are detected by depth).
func compressToHeap(t *Tree, target int) {
	if target < 1 {
		target = 1
	}
	if t.live <= target {
		return
	}
	t.dirty()
	h := &refFoldHeap{}
	h.items = make([]refFoldItem, 0, len(t.nodes))
	for i := 1; i < len(t.slab); i++ {
		n := &t.slab[i]
		if n.depth >= 0 && n.isLeaf() {
			h.items = append(h.items, refFoldItem{i: int32(i), s: n.agg.ScoreWith(t.score)})
		}
	}
	// Materialize a possibly-deferred index up front: the fold deletes
	// from it, and the test inspects it afterwards.
	t.index()
	heap.Init(h)
	for t.live > target && h.Len() > 0 {
		it := heap.Pop(h).(refFoldItem)
		n := &t.slab[it.i]
		if n.depth < 0 || !n.isLeaf() {
			continue
		}
		if cur := n.agg.ScoreWith(t.score); cur != it.s {
			heap.Push(h, refFoldItem{i: it.i, s: cur})
			continue
		}
		p := n.parent
		t.slab[p].own.Add(n.own)
		t.removeChild(p, it.i)
		delete(t.nodes, n.key)
		n.depth = freeDepth
		t.free = append(t.free, it.i)
		t.live--
		if p != rootIdx && t.slab[p].isLeaf() {
			heap.Push(h, refFoldItem{i: p, s: t.slab[p].agg.ScoreWith(t.score)})
		}
	}
}

// Property: the sort-based bulk fold is equivalent to the heap-based fold —
// identical totals, identical node counts (within the requested target),
// identical fold-score frontier, and Query stays a lower bound of the
// uncompressed tree on both.
func TestPropSortFoldEquivalentToHeapFold(t *testing.T) {
	f := func(xs []uint32, target8 uint8) bool {
		target := int(target8)%300 + 2
		full, _ := New(0)
		var keys []flow.Key
		for _, x := range xs {
			r := randomRecord(x, x*2654435761, uint16(x), uint16(x>>16), x%100000)
			full.Add(r)
			keys = append(keys, r.Key)
		}
		sorted := full.Clone()
		heaped := full.Clone()
		sorted.CompressTo(target)
		compressToHeap(heaped, target)
		if sorted.Total() != heaped.Total() || sorted.Total() != full.Total() {
			return false
		}
		if sorted.Len() != heaped.Len() || sorted.Len() > max(target, 1) {
			return false
		}
		for _, k := range keys {
			truth := full.Query(k)
			qs, qh := sorted.Query(k), heaped.Query(k)
			if qs.Bytes > truth.Bytes || qh.Bytes > truth.Bytes {
				return false // compressed queries must stay lower bounds
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The two folds must agree not only on invariants but on attribution: on a
// trace with distinct scores, both keep exactly the same node set.
func TestSortFoldMatchesHeapFoldNodeSet(t *testing.T) {
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 7, Skew: 1.2})
	if err != nil {
		t.Fatal(err)
	}
	base, _ := New(0)
	base.AddBatch(g.Records(20000))
	for _, target := range []int{64, 512, 4096} {
		sorted := base.Clone()
		heaped := base.Clone()
		sorted.CompressTo(target)
		compressToHeap(heaped, target)
		if sorted.Len() != heaped.Len() {
			t.Fatalf("target %d: sort fold kept %d nodes, heap fold %d", target, sorted.Len(), heaped.Len())
		}
		mismatch := 0
		for k := range sorted.index() {
			if _, ok := heaped.index()[k]; !ok {
				mismatch++
			}
		}
		// Equal-score ties may resolve differently (the heap breaks them by
		// sift order); anything beyond a sliver of the tree is a bug.
		if mismatch > sorted.Len()/50+2 {
			t.Errorf("target %d: %d of %d surviving nodes differ between folds", target, mismatch, sorted.Len())
		}
		for k, si := range sorted.nodes {
			hi, ok := heaped.nodes[k]
			if !ok {
				continue
			}
			sn, hn := &sorted.slab[si], &heaped.slab[hi]
			if sn.own != hn.own || sn.agg != hn.agg {
				t.Fatalf("target %d: node %v counters diverge: sort %+v/%+v heap %+v/%+v",
					target, k, sn.own, sn.agg, hn.own, hn.agg)
			}
		}
	}
}

// A score violating the documented monotonicity contract (nodes can
// outscore their ancestors) must degrade compression, never corrupt the
// tree: totals conserved, every node reachable from the root, aggregates
// consistent.
func TestCompressNonMonotoneScoreStaysConsistent(t *testing.T) {
	// Bytes-per-flow ratio: an ancestor aggregating many small flows
	// scores below its heavy-flow child.
	ratio := func(_, bytes, flows uint64) uint64 {
		if flows == 0 {
			return 0
		}
		return bytes / flows
	}
	for _, frac := range []float64{0.001, 0.1, 0.6, 0.9} { // rebuild and sequential+cascade paths
		tr, _ := New(0, WithScore(ratio))
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 3, Skew: 1.2})
		if err != nil {
			t.Fatal(err)
		}
		tr.AddBatch(g.Records(5000))
		target := int(float64(tr.Len()) * frac)
		if target < 2 {
			target = 2
		}
		before := tr.Total()
		tr.CompressTo(target)
		if tr.Total() != before {
			t.Fatalf("target %d: total changed: %+v -> %+v", target, before, tr.Total())
		}
		if tr.Len() > target {
			t.Fatalf("target %d: %d nodes remain (cascade fallback must reach the target)", target, tr.Len())
		}
		reachable := 0
		tr.walk(func(n *node) bool { reachable++; return true })
		if reachable != tr.Len() {
			t.Fatalf("target %d: %d nodes reachable, index has %d", target, reachable, tr.Len())
		}
		var sum flow.Counters
		for _, e := range tr.Entries() {
			sum.Add(e.Counters)
		}
		if sum != before {
			t.Fatalf("target %d: own weights sum to %+v, want %+v", target, sum, before)
		}
	}
}

// buildSkewedTree bulk-ingests a deterministic Zipf trace into an
// unbudgeted tree.
func buildSkewedTree(tb testing.TB, n int, skew float64) *Tree {
	tb.Helper()
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 42, Skew: skew})
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := New(0)
	if err != nil {
		tb.Fatal(err)
	}
	tr.AddBatch(g.Records(n))
	return tr
}

// BenchmarkCompress prices one full compression of a skewed trace tree down
// to a node budget: the sort-based bulk fold (algo=sort) against the
// heap-based incremental fold it replaced (algo=heap). The tree is rebuilt
// per iteration via Clone (structural copy, untimed).
func BenchmarkCompress(b *testing.B) {
	for _, cfg := range []struct {
		records, budget int
	}{
		{100000, 4096},
		{1000000, 10000},
	} {
		base := buildSkewedTree(b, cfg.records, 1.2)
		for _, algo := range []string{"sort", "heap"} {
			name := fmt.Sprintf("records=%d/budget=%d/algo=%s", cfg.records, cfg.budget, algo)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					tr := base.Clone()
					// Collect the clone's construction garbage outside the
					// timed section so both algorithms are measured on
					// their own work, not the copy's GC debt.
					runtime.GC()
					b.StartTimer()
					if algo == "sort" {
						tr.CompressTo(cfg.budget)
					} else {
						compressToHeap(tr, cfg.budget)
					}
				}
				b.ReportMetric(float64(base.Len()-cfg.budget), "folds/op")
			})
		}
	}
}

// BenchmarkAddBatch prices the bulk ingest path (deferred aggregation +
// one compression per batch) against per-record Add on a budgeted tree.
func BenchmarkAddBatch(b *testing.B) {
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 42, Skew: 1.2})
	if err != nil {
		b.Fatal(err)
	}
	recs := g.Records(100000)
	const budget = 4096
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, _ := New(budget)
			for _, r := range recs {
				tr.Add(r)
			}
		}
		b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "flows/s")
	})
	b.Run("batch=2048", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tr, _ := New(budget)
			for off := 0; off < len(recs); off += 2048 {
				end := min(off+2048, len(recs))
				tr.AddBatch(recs[off:end])
			}
		}
		b.ReportMetric(float64(len(recs)*b.N)/b.Elapsed().Seconds(), "flows/s")
	})
}

// BenchmarkClone prices the structural deep copy.
func BenchmarkClone(b *testing.B) {
	base := buildSkewedTree(b, 100000, 1.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = base.Clone()
	}
}
