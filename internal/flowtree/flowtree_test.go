package flowtree

import (
	"math/rand"
	"testing"
	"time"

	"megadata/internal/flow"
	"megadata/internal/workload"
)

func mustIP(t *testing.T, s string) flow.IPv4 {
	t.Helper()
	ip, err := flow.ParseIPv4(s)
	if err != nil {
		t.Fatalf("ParseIPv4(%q): %v", s, err)
	}
	return ip
}

func rec(t *testing.T, src, dst string, dport uint16, bytes uint64) flow.Record {
	t.Helper()
	return flow.Record{
		Key:     flow.Exact(flow.ProtoTCP, mustIP(t, src), mustIP(t, dst), 40000, dport),
		Packets: bytes / 1000,
		Bytes:   bytes,
	}
}

func genRecords(seed int64, n int) []flow.Record {
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: seed, Sources: 4096, Destinations: 1024})
	if err != nil {
		panic(err)
	}
	return g.Records(n)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative budget must error")
	}
	if _, err := New(1); err == nil {
		t.Error("budget 1 must error")
	}
	if _, err := New(0, WithStepBits(33)); err == nil {
		t.Error("step 33 must error")
	}
	if _, err := New(0, WithCompressTarget(0)); err == nil {
		t.Error("compress target 0 must error")
	}
	if _, err := New(0, WithCompressTarget(1.5)); err == nil {
		t.Error("compress target >1 must error")
	}
}

func TestAddAndQueryExact(t *testing.T) {
	tr, _ := New(0)
	r := rec(t, "10.1.2.3", "192.168.1.5", 443, 5000)
	tr.Add(r)
	tr.Add(r)
	got := tr.Query(r.Key)
	if got.Bytes != 10000 || got.Flows != 2 {
		t.Errorf("Query = %+v", got)
	}
	if tr.Inserted() != 2 {
		t.Errorf("Inserted = %d", tr.Inserted())
	}
}

func TestQueryPrefixAggregation(t *testing.T) {
	tr, _ := New(0)
	tr.Add(rec(t, "10.1.2.3", "192.168.1.5", 443, 1000))
	tr.Add(rec(t, "10.1.2.4", "192.168.1.5", 443, 2000))
	tr.Add(rec(t, "10.9.9.9", "192.168.1.5", 443, 4000))
	tr.Add(rec(t, "11.0.0.1", "192.168.1.5", 443, 8000))

	// All of 10.0.0.0/8, any destination.
	q := flow.Key{SrcIP: mustIP(t, "10.0.0.0"), SrcPrefix: 8, WildProto: true, WildSrcPort: true, WildDstPort: true}
	if got := tr.Query(q); got.Bytes != 7000 {
		t.Errorf("Query(10/8) = %+v, want 7000 bytes", got)
	}
	// Root sees everything.
	if got := tr.Query(flow.Root()); got.Bytes != 15000 {
		t.Errorf("Query(root) = %+v", got)
	}
	// Non-canonical query: destination port 443 with everything else wild.
	q443 := flow.Root()
	q443.WildDstPort = false
	q443.DstPort = 443
	if got := tr.Query(q443); got.Bytes != 15000 {
		t.Errorf("Query(dport 443) = %+v", got)
	}
	q80 := flow.Root()
	q80.WildDstPort = false
	q80.DstPort = 80
	if got := tr.Query(q80); got.Bytes != 0 {
		t.Errorf("Query(dport 80) = %+v", got)
	}
}

func TestRootAggregateInvariant(t *testing.T) {
	tr, _ := New(0)
	var want flow.Counters
	for _, r := range genRecords(1, 2000) {
		tr.Add(r)
		want.Add(flow.CountersOf(r))
	}
	if got := tr.Total(); got != want {
		t.Errorf("Total = %+v, want %+v", got, want)
	}
}

func TestCompressPreservesTotal(t *testing.T) {
	tr, _ := New(0)
	for _, r := range genRecords(2, 5000) {
		tr.Add(r)
	}
	before := tr.Total()
	nodesBefore := tr.Len()
	tr.CompressTo(100)
	if tr.Len() > 100 {
		t.Errorf("CompressTo(100) left %d nodes", tr.Len())
	}
	if tr.Len() >= nodesBefore {
		t.Error("compression did not shrink the tree")
	}
	if got := tr.Total(); got != before {
		t.Errorf("compression changed total: %+v -> %+v", before, got)
	}
}

func TestBudgetAutoCompress(t *testing.T) {
	tr, _ := New(500)
	for _, r := range genRecords(3, 20000) {
		tr.Add(r)
	}
	if tr.Len() > 500 {
		t.Errorf("tree exceeded budget: %d nodes", tr.Len())
	}
	if tr.Budget() != 500 {
		t.Errorf("Budget = %d", tr.Budget())
	}
}

func TestCompressKeepsHeavyFlowsSpecific(t *testing.T) {
	tr, _ := New(0)
	heavy := rec(t, "10.1.2.3", "192.168.1.5", 443, 1_000_000)
	tr.Add(heavy)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3000; i++ {
		tr.Add(flow.Record{
			Key:     flow.Exact(flow.ProtoUDP, flow.IPv4(rng.Uint32()), flow.IPv4(rng.Uint32()), uint16(rng.Intn(65536)), 53),
			Packets: 1, Bytes: 100,
		})
	}
	tr.CompressTo(200)
	// The heavy exact flow must survive compression with its weight
	// still attributed at (or below) a specific key.
	got := tr.Query(heavy.Key)
	if got.Bytes != 1_000_000 {
		t.Errorf("heavy flow lost attribution after compress: %+v", got)
	}
}

func TestSetBudget(t *testing.T) {
	tr, _ := New(0)
	for _, r := range genRecords(5, 5000) {
		tr.Add(r)
	}
	if err := tr.SetBudget(100); err != nil {
		t.Fatal(err)
	}
	if tr.Len() > 100 {
		t.Errorf("SetBudget did not compress: %d nodes", tr.Len())
	}
	if err := tr.SetBudget(-1); err == nil {
		t.Error("negative budget must error")
	}
	if err := tr.SetBudget(1); err == nil {
		t.Error("budget 1 must error")
	}
}

func TestMergePreservesTotals(t *testing.T) {
	a, _ := New(0)
	b, _ := New(0)
	var want flow.Counters
	for i, r := range genRecords(6, 4000) {
		if i%2 == 0 {
			a.Add(r)
		} else {
			b.Add(r)
		}
		want.Add(flow.CountersOf(r))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Total(); got != want {
		t.Errorf("merged total = %+v, want %+v", got, want)
	}
}

func TestMergeMatchesUnion(t *testing.T) {
	recs := genRecords(7, 3000)
	a, _ := New(0)
	b, _ := New(0)
	u, _ := New(0)
	for i, r := range recs {
		if i%2 == 0 {
			a.Add(r)
		} else {
			b.Add(r)
		}
		u.Add(r)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Every exact key must agree between merged and union trees.
	for _, r := range recs {
		got := a.Query(r.Key)
		want := u.Query(r.Key)
		if got != want {
			t.Fatalf("Query(%v): merged %+v != union %+v", r.Key, got, want)
		}
	}
}

func TestMergeStepMismatch(t *testing.T) {
	a, _ := New(0, WithStepBits(8))
	b, _ := New(0, WithStepBits(4))
	if err := a.Merge(b); err == nil {
		t.Error("merging different steps must error")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil: %v", err)
	}
}

func TestDiff(t *testing.T) {
	a, _ := New(0)
	b, _ := New(0)
	r1 := rec(t, "10.1.2.3", "192.168.1.5", 443, 5000)
	r2 := rec(t, "10.1.2.4", "192.168.1.5", 80, 3000)
	a.Add(r1)
	a.Add(r2)
	b.Add(r1) // same flow observed elsewhere
	if err := a.Diff(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(r1.Key); got.Bytes != 0 {
		t.Errorf("diffed flow still has %+v", got)
	}
	if got := a.Query(r2.Key); got.Bytes != 3000 {
		t.Errorf("unrelated flow changed: %+v", got)
	}
	// Saturation: diffing again must not underflow.
	if err := a.Diff(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Query(r1.Key); got.Bytes != 0 {
		t.Errorf("saturated diff = %+v", got)
	}
}

func TestDrilldown(t *testing.T) {
	tr, _ := New(0)
	tr.Add(rec(t, "10.1.2.3", "192.168.1.5", 443, 9000))
	tr.Add(rec(t, "10.1.2.4", "192.168.1.5", 443, 1000))
	// Drill into the root: must return exactly its children, ordered by
	// descending score.
	kids, ok := tr.Drilldown(flow.Root())
	if !ok {
		t.Fatal("root drilldown failed")
	}
	if len(kids) != 1 {
		t.Fatalf("root has %d children (canonical chain shares the first steps)", len(kids))
	}
	// Walk down the chain of the heavier flow to a branching point.
	missing := flow.Exact(flow.ProtoTCP, mustIP(t, "1.2.3.4"), 0, 1, 2)
	if _, ok := tr.Drilldown(missing); ok {
		t.Error("drilldown at absent key must report ok=false")
	}
}

func TestDrilldownOrdering(t *testing.T) {
	tr, _ := New(0)
	tr.Add(rec(t, "10.1.2.3", "192.168.1.5", 443, 1000))
	tr.Add(rec(t, "10.200.2.3", "192.168.1.5", 443, 9000))
	// Find a node with two children by walking from the root.
	cur := flow.Root()
	for {
		kids, ok := tr.Drilldown(cur)
		if !ok {
			t.Fatal("walk fell off the tree")
		}
		if len(kids) == 0 {
			t.Fatal("no branching point found")
		}
		if len(kids) >= 2 {
			if kids[0].Counters.Bytes < kids[1].Counters.Bytes {
				t.Errorf("drilldown not sorted: %v", kids)
			}
			return
		}
		cur = kids[0].Key
	}
}

func TestTopK(t *testing.T) {
	tr, _ := New(0)
	tr.Add(rec(t, "10.1.2.3", "192.168.1.5", 443, 9000))
	tr.Add(rec(t, "10.1.2.4", "192.168.1.5", 443, 5000))
	tr.Add(rec(t, "10.1.2.5", "192.168.1.5", 443, 1000))
	top := tr.TopK(2)
	if len(top) != 2 {
		t.Fatalf("TopK(2) = %d entries", len(top))
	}
	if top[0].Counters.Bytes != 9000 || top[1].Counters.Bytes != 5000 {
		t.Errorf("TopK = %+v", top)
	}
	if got := tr.TopK(0); got != nil {
		t.Errorf("TopK(0) = %v", got)
	}
	if got := tr.TopK(100); len(got) != 3 {
		t.Errorf("TopK(100) = %d entries", len(got))
	}
}

func TestAboveX(t *testing.T) {
	tr, _ := New(0)
	tr.Add(rec(t, "10.1.2.3", "192.168.1.5", 443, 9000))
	tr.Add(rec(t, "10.1.2.4", "192.168.1.5", 443, 100))
	got := tr.AboveX(9000)
	// Every ancestor of the heavy flow also aggregates >= 9000.
	if len(got) == 0 {
		t.Fatal("AboveX(9000) empty")
	}
	for _, e := range got {
		if e.Counters.Bytes < 9000 {
			t.Errorf("entry below threshold: %+v", e)
		}
	}
	// The exact heavy key must be among them.
	found := false
	heavy := flow.Exact(flow.ProtoTCP, mustIP(t, "10.1.2.3"), mustIP(t, "192.168.1.5"), 40000, 443)
	for _, e := range got {
		if e.Key == heavy {
			found = true
		}
	}
	if !found {
		t.Error("heavy exact flow missing from AboveX")
	}
	if len(tr.AboveX(1<<60)) != 0 {
		t.Error("AboveX(huge) must be empty")
	}
}

func TestHHH(t *testing.T) {
	tr, _ := New(0)
	// Heavy /24: 60 flows of 1000 bytes each in 10.1.1.0/24, plus
	// diffuse noise elsewhere.
	for i := 0; i < 60; i++ {
		tr.Add(flow.Record{
			Key:     flow.Exact(flow.ProtoTCP, flow.IPv4(0x0A010100|uint32(i)), mustIP(t, "192.168.1.5"), uint16(30000+i), 443),
			Packets: 1, Bytes: 1000,
		})
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		tr.Add(flow.Record{
			Key:     flow.Exact(flow.ProtoTCP, flow.IPv4(rng.Uint32()|0xB0000000), flow.IPv4(rng.Uint32()), uint16(rng.Intn(65536)), 80),
			Packets: 1, Bytes: 1000,
		})
	}
	hhs := tr.HHH(0.3) // threshold 30k of 100k
	if len(hhs) == 0 {
		t.Fatal("no HHHs found")
	}
	// Some reported HHH must cover the 10.1.1.0/24 heavy prefix and not
	// be the root.
	found := false
	probe := flow.Exact(flow.ProtoTCP, mustIP(t, "10.1.1.7"), mustIP(t, "192.168.1.5"), 30007, 443)
	for _, h := range hhs {
		if !h.Key.IsRoot() && h.Key.Generalizes(probe) {
			found = true
		}
	}
	if !found {
		t.Errorf("no non-root HHH covers the heavy prefix: %+v", hhs)
	}
	// Discounted weights sum to at most the total.
	var sum uint64
	for _, h := range hhs {
		sum += h.Discounted
	}
	if sum > tr.Total().Bytes {
		t.Errorf("discounted sum %d exceeds total %d", sum, tr.Total().Bytes)
	}
}

func TestHHHAfterCompression(t *testing.T) {
	tr, _ := New(512)
	g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: 10, Skew: 1.3})
	for _, r := range g.Records(20000) {
		tr.Add(r)
	}
	hhs := tr.HHH(0.05)
	if len(hhs) == 0 {
		t.Fatal("no HHHs on skewed traffic")
	}
	for _, h := range hhs {
		if h.Discounted > h.Counters.Bytes {
			t.Errorf("discounted exceeds subtree weight: %+v", h)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	tr, _ := New(0)
	r := rec(t, "10.1.2.3", "192.168.1.5", 443, 1000)
	tr.Add(r)
	cp := tr.Clone()
	if cp.Total() != tr.Total() {
		t.Fatalf("clone total mismatch")
	}
	cp.Add(r)
	if cp.Total() == tr.Total() {
		t.Error("mutating clone affected original")
	}
	if cp.Inserted() != tr.Inserted()+1 {
		t.Errorf("clone Inserted = %d", cp.Inserted())
	}
}

func TestScoreOption(t *testing.T) {
	tr, _ := New(0, WithScore(flow.ScorePackets))
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoTCP, 1, 2, 3, 4), Packets: 100, Bytes: 1})
	tr.Add(flow.Record{Key: flow.Exact(flow.ProtoTCP, 5, 6, 7, 8), Packets: 1, Bytes: 100000})
	top := tr.TopK(1)
	if top[0].Counters.Packets != 100 {
		t.Errorf("packet-score TopK = %+v", top)
	}
}

func TestWorkloadIntegration(t *testing.T) {
	tr, _ := New(4096)
	g, _ := workload.NewFlowGen(workload.FlowConfig{Seed: 20, Skew: 1.2, Start: time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)})
	var want flow.Counters
	for _, r := range g.Records(50000) {
		tr.Add(r)
		want.Add(flow.CountersOf(r))
	}
	if got := tr.Total(); got != want {
		t.Errorf("total after 50k inserts = %+v, want %+v", got, want)
	}
	if tr.Len() > 4096 {
		t.Errorf("budget violated: %d", tr.Len())
	}
}
