package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{in: "0.0.0.0", want: 0},
		{in: "255.255.255.255", want: 0xFFFFFFFF},
		{in: "10.0.0.1", want: 0x0A000001},
		{in: "192.168.1.5", want: 0xC0A80105},
		{in: "1.2.3", wantErr: true},
		{in: "1.2.3.4.5", wantErr: true},
		{in: "256.0.0.1", wantErr: true},
		{in: "a.b.c.d", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tt := range tests {
		got, err := ParseIPv4(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParseIPv4(%q): want error, got %v", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIPv4(%q): unexpected error %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseIPv4(%q) = %#x, want %#x", tt.in, got, tt.want)
		}
	}
}

func TestIPv4RoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4Mask(t *testing.T) {
	ip := mustIP(t, "10.20.30.40")
	tests := []struct {
		bits uint8
		want string
	}{
		{bits: 32, want: "10.20.30.40"},
		{bits: 24, want: "10.20.30.0"},
		{bits: 16, want: "10.20.0.0"},
		{bits: 8, want: "10.0.0.0"},
		{bits: 0, want: "0.0.0.0"},
		{bits: 28, want: "10.20.30.32"},
		{bits: 40, want: "10.20.30.40"}, // clamped
	}
	for _, tt := range tests {
		if got := ip.Mask(tt.bits).String(); got != tt.want {
			t.Errorf("Mask(%d) = %s, want %s", tt.bits, got, tt.want)
		}
	}
}

func mustIP(t *testing.T, s string) IPv4 {
	t.Helper()
	ip, err := ParseIPv4(s)
	if err != nil {
		t.Fatalf("ParseIPv4(%q): %v", s, err)
	}
	return ip
}

func testKey(t *testing.T) Key {
	t.Helper()
	return Exact(ProtoTCP, mustIP(t, "10.1.2.3"), mustIP(t, "192.168.1.5"), 51000, 443)
}

func TestGeneralizesReflexive(t *testing.T) {
	k := testKey(t)
	if !k.Generalizes(k) {
		t.Error("key must generalize itself")
	}
}

func TestRootGeneralizesEverything(t *testing.T) {
	root := Root()
	if !root.IsRoot() {
		t.Fatal("Root() is not IsRoot")
	}
	k := testKey(t)
	if !root.Generalizes(k) {
		t.Error("root must generalize any exact key")
	}
	if k.Generalizes(root) {
		t.Error("exact key must not generalize root")
	}
}

func TestGeneralizeStepChainEndsAtRoot(t *testing.T) {
	k := testKey(t)
	chain := k.Chain(8)
	if len(chain) == 0 {
		t.Fatal("chain of exact key is empty")
	}
	last := chain[len(chain)-1]
	if !last.IsRoot() {
		t.Errorf("chain must end at root, ended at %v", last)
	}
	// Each element must strictly generalize the previous one and the
	// original key.
	prev := k
	for i, c := range chain {
		if !c.Generalizes(prev) {
			t.Errorf("chain[%d]=%v does not generalize %v", i, c, prev)
		}
		if !c.Generalizes(k) {
			t.Errorf("chain[%d]=%v does not generalize original %v", i, c, k)
		}
		if c == prev {
			t.Errorf("chain[%d] did not make progress", i)
		}
		prev = c
	}
}

func TestGeneralizeStepAtRoot(t *testing.T) {
	if _, ok := Root().GeneralizeStep(8); ok {
		t.Error("GeneralizeStep at root must report ok=false")
	}
}

func TestChainDepthByStep(t *testing.T) {
	k := testKey(t)
	// 3 wildcard steps + 4 source prefix steps + 4 dest prefix steps.
	if got, want := k.Depth(8), 11; got != want {
		t.Errorf("Depth(8) = %d, want %d", got, want)
	}
	// With 4-bit steps the prefixes need 8 steps each.
	if got, want := k.Depth(4), 19; got != want {
		t.Errorf("Depth(4) = %d, want %d", got, want)
	}
}

func TestGeneralizesPrefixSemantics(t *testing.T) {
	a := Key{SrcIP: mustIP(t, "10.0.0.0"), SrcPrefix: 8, DstPrefix: 0, WildProto: true, WildSrcPort: true, WildDstPort: true}
	inside := testKey(t) // src 10.1.2.3
	outside := Exact(ProtoTCP, mustIP(t, "11.1.2.3"), mustIP(t, "192.168.1.5"), 51000, 443)
	if !a.Generalizes(inside) {
		t.Errorf("%v should generalize %v", a, inside)
	}
	if a.Generalizes(outside) {
		t.Errorf("%v should not generalize %v", a, outside)
	}
}

func TestGeneralizesAntisymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randomKey(rng)
		b := randomKey(rng)
		if a.normalize() == b.normalize() {
			continue
		}
		if a.Generalizes(b) && b.Generalizes(a) {
			t.Fatalf("distinct keys generalize each other: %v / %v", a, b)
		}
	}
}

func TestGeneralizesTransitiveAlongChain(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		k := randomExact(rng)
		chain := k.Chain(8)
		for j := 0; j+1 < len(chain); j++ {
			if !chain[j+1].Generalizes(chain[j]) {
				t.Fatalf("chain not monotone at %d: %v vs %v", j, chain[j+1], chain[j])
			}
		}
	}
}

func randomExact(rng *rand.Rand) Key {
	return Exact(
		Proto(rng.Intn(256)),
		IPv4(rng.Uint32()),
		IPv4(rng.Uint32()),
		uint16(rng.Intn(65536)),
		uint16(rng.Intn(65536)),
	)
}

func randomKey(rng *rand.Rand) Key {
	k := randomExact(rng)
	k.SrcPrefix = uint8(rng.Intn(33))
	k.DstPrefix = uint8(rng.Intn(33))
	k.WildProto = rng.Intn(2) == 0
	k.WildSrcPort = rng.Intn(2) == 0
	k.WildDstPort = rng.Intn(2) == 0
	return k.normalize()
}

func TestKeyString(t *testing.T) {
	k := testKey(t)
	want := "tcp 10.1.2.3/32:51000->192.168.1.5/32:443"
	if got := k.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	g, _ := k.GeneralizeStep(8)
	want = "tcp 10.1.2.3/32:*->192.168.1.5/32:443"
	if got := g.String(); got != want {
		t.Errorf("String() after one step = %q, want %q", got, want)
	}
	if got, want := Root().String(), "* 0.0.0.0/0:*->0.0.0.0/0:*"; got != want {
		t.Errorf("Root().String() = %q, want %q", got, want)
	}
}

func TestKeyBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		k := randomKey(rng)
		buf := k.AppendBinary(nil)
		got, n, err := KeyFromBinary(buf)
		if err != nil {
			t.Fatalf("KeyFromBinary: %v", err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d, want %d", n, len(buf))
		}
		if got != k {
			t.Fatalf("round trip: got %v, want %v", got, k)
		}
	}
}

func TestKeyFromBinaryErrors(t *testing.T) {
	if _, _, err := KeyFromBinary(make([]byte, 3)); err == nil {
		t.Error("short buffer must error")
	}
	k := Exact(ProtoTCP, 0, 0, 1, 2)
	buf := k.AppendBinary(nil)
	buf[13] = 40 // corrupt prefix
	if _, _, err := KeyFromBinary(buf); err == nil {
		t.Error("out-of-range prefix must error")
	}
}

func TestCountersAddSub(t *testing.T) {
	a := Counters{Packets: 10, Bytes: 100, Flows: 1}
	b := Counters{Packets: 4, Bytes: 250, Flows: 2}
	a.Add(b)
	if a != (Counters{Packets: 14, Bytes: 350, Flows: 3}) {
		t.Errorf("Add: got %+v", a)
	}
	a.Sub(Counters{Packets: 20, Bytes: 300, Flows: 1})
	if a != (Counters{Packets: 0, Bytes: 50, Flows: 2}) {
		t.Errorf("Sub must saturate: got %+v", a)
	}
	if !(Counters{}).IsZero() {
		t.Error("zero Counters must be IsZero")
	}
	if a.IsZero() {
		t.Error("non-zero Counters must not be IsZero")
	}
}

func TestScores(t *testing.T) {
	c := Counters{Packets: 3, Bytes: 1500, Flows: 2}
	if got := c.ScoreWith(ScoreBytes); got != 1500 {
		t.Errorf("ScoreBytes = %d", got)
	}
	if got := c.ScoreWith(ScorePackets); got != 3 {
		t.Errorf("ScorePackets = %d", got)
	}
	if got := c.ScoreWith(ScoreFlows); got != 2 {
		t.Errorf("ScoreFlows = %d", got)
	}
}

func TestCountersOf(t *testing.T) {
	r := Record{Key: Root(), Packets: 7, Bytes: 900}
	c := CountersOf(r)
	if c != (Counters{Packets: 7, Bytes: 900, Flows: 1}) {
		t.Errorf("CountersOf = %+v", c)
	}
}

func TestGeneralizeStepNormalizesHiddenBits(t *testing.T) {
	// A key whose address has bits below the mask must compare equal to
	// the same generalization built from a clean address.
	dirty := Key{
		Proto: ProtoUDP, SrcIP: mustIP(t, "10.1.2.3"), DstIP: mustIP(t, "10.9.9.9"),
		SrcPort: 5, DstPort: 6, SrcPrefix: 8, DstPrefix: 8,
	}
	clean := Key{
		Proto: ProtoUDP, SrcIP: mustIP(t, "10.0.0.0"), DstIP: mustIP(t, "10.0.0.0"),
		SrcPort: 5, DstPort: 6, SrcPrefix: 8, DstPrefix: 8,
	}
	dp, _ := dirty.GeneralizeStep(8)
	cp, _ := clean.GeneralizeStep(8)
	if dp != cp {
		t.Errorf("normalization failed: %v vs %v", dp, cp)
	}
}
