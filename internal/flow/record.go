package flow

import (
	"encoding/binary"
	"fmt"
	"time"
)

// Record is one observed flow export: a fully specific key plus its measured
// popularity (packets, bytes) and the time of observation. Records are what
// routers (or the workload generator standing in for them) push into data
// stores.
type Record struct {
	Key     Key
	Packets uint64
	Bytes   uint64
	// Start is the epoch the record belongs to (flow exports are binned
	// per aggregation interval).
	Start time.Time
}

// Score selects the popularity metric of a flow record, per the paper:
// "packet count, flow count, byte count, or combinations thereof".
type Score func(packets, bytes, flows uint64) uint64

// Built-in popularity scores.
var (
	// ScoreBytes ranks flows by byte volume.
	ScoreBytes Score = func(_, bytes, _ uint64) uint64 { return bytes }
	// ScorePackets ranks flows by packet count.
	ScorePackets Score = func(packets, _, _ uint64) uint64 { return packets }
	// ScoreFlows ranks flows by the number of distinct flow records.
	ScoreFlows Score = func(_, _, flows uint64) uint64 { return flows }
)

// Counters is the additive popularity annotation carried by every Flowtree
// node and by FlowDB rows.
type Counters struct {
	Packets uint64
	Bytes   uint64
	Flows   uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Packets += other.Packets
	c.Bytes += other.Bytes
	c.Flows += other.Flows
}

// Sub subtracts other from c, saturating at zero (Diff semantics: popularity
// scores never go negative).
func (c *Counters) Sub(other Counters) {
	c.Packets = satSub(c.Packets, other.Packets)
	c.Bytes = satSub(c.Bytes, other.Bytes)
	c.Flows = satSub(c.Flows, other.Flows)
}

func satSub(a, b uint64) uint64 {
	if b >= a {
		return 0
	}
	return a - b
}

// IsZero reports whether all counters are zero.
func (c Counters) IsZero() bool {
	return c.Packets == 0 && c.Bytes == 0 && c.Flows == 0
}

// ScoreWith applies a Score function to the counters.
func (c Counters) ScoreWith(s Score) uint64 {
	return s(c.Packets, c.Bytes, c.Flows)
}

// CountersOf builds the Counters contribution of a single record.
func CountersOf(r Record) Counters {
	return Counters{Packets: r.Packets, Bytes: r.Bytes, Flows: 1}
}

// keyWireSize is the fixed encoding size of a Key on the wire.
const keyWireSize = 4 + 4 + 2 + 2 + 1 + 1 + 1 + 1

// AppendBinary appends a fixed-width binary encoding of the key, suitable
// for hashing and for the simnet wire format.
func (k Key) AppendBinary(dst []byte) []byte {
	k = k.normalize()
	var buf [keyWireSize]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(k.SrcIP))
	binary.BigEndian.PutUint32(buf[4:], uint32(k.DstIP))
	binary.BigEndian.PutUint16(buf[8:], k.SrcPort)
	binary.BigEndian.PutUint16(buf[10:], k.DstPort)
	buf[12] = byte(k.Proto)
	buf[13] = k.SrcPrefix
	buf[14] = k.DstPrefix
	var wild byte
	if k.WildProto {
		wild |= 1
	}
	if k.WildSrcPort {
		wild |= 2
	}
	if k.WildDstPort {
		wild |= 4
	}
	buf[15] = wild
	return append(dst, buf[:]...)
}

// Normalized returns the key with fields hidden behind wildcards/masks
// zeroed, so that semantically equal keys compare equal field by field.
// Codecs that serialize key fields directly (flowtree wire v2) normalize
// first, matching what AppendBinary and Hash do internally.
func (k Key) Normalized() Key { return k.normalize() }

// FNV-1a constants (hash/fnv, inlined to keep the hot path allocation-free).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// Hash returns a stable 64-bit hash of the normalized key (FNV-1a over the
// AppendBinary encoding). Sharded ingest partitions streams with it, so two
// records of the same flow always land on the same shard.
func (k Key) Hash() uint64 {
	var buf [keyWireSize]byte
	b := k.AppendBinary(buf[:0])
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// KeyFromBinary decodes a key encoded by AppendBinary and returns the number
// of bytes consumed.
func KeyFromBinary(src []byte) (Key, int, error) {
	if len(src) < keyWireSize {
		return Key{}, 0, fmt.Errorf("decode flow key: need %d bytes, have %d", keyWireSize, len(src))
	}
	k := Key{
		SrcIP:     IPv4(binary.BigEndian.Uint32(src[0:])),
		DstIP:     IPv4(binary.BigEndian.Uint32(src[4:])),
		SrcPort:   binary.BigEndian.Uint16(src[8:]),
		DstPort:   binary.BigEndian.Uint16(src[10:]),
		Proto:     Proto(src[12]),
		SrcPrefix: src[13],
		DstPrefix: src[14],
	}
	if k.SrcPrefix > 32 || k.DstPrefix > 32 {
		return Key{}, 0, fmt.Errorf("decode flow key: prefix out of range (%d,%d)", k.SrcPrefix, k.DstPrefix)
	}
	wild := src[15]
	k.WildProto = wild&1 != 0
	k.WildSrcPort = wild&2 != 0
	k.WildDstPort = wild&4 != 0
	return k.normalize(), keyWireSize, nil
}
