// Package flow models generalized network flows as described in Section VI
// of the paper. A flow is a vector of features (protocol, source and
// destination IP, source and destination port); each feature can be
// generalized with a mask, e.g. an IP address generalizes to the prefixes
// that contain it. Generalization induces a lattice over flows: flow A is an
// ancestor of flow B when every feature of A is a generalization of the
// corresponding feature of B. Flowtree (internal/flowtree) arranges observed
// flows inside this lattice.
package flow

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order.
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation ("a.b.c.d") into an IPv4.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("parse ipv4 %q: want 4 octets, got %d", s, len(parts))
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("parse ipv4 %q: octet %q: %w", s, p, err)
		}
		v = v<<8 | uint32(n)
	}
	return IPv4(v), nil
}

// String renders the address in dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Mask keeps the top n bits of the address, zeroing the rest.
func (ip IPv4) Mask(n uint8) IPv4 {
	if n >= 32 {
		return ip
	}
	if n == 0 {
		return 0
	}
	return ip & IPv4(^uint32(0)<<(32-n))
}

// Proto identifies a transport protocol. Only the values that matter for the
// workloads are named; any IANA protocol number is representable.
type Proto uint8

// Common transport protocols.
const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String returns the conventional protocol name, or the decimal number.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "icmp"
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return strconv.Itoa(int(p))
	}
}

// Key is a generalized 5-feature flow: the feature values plus, for each
// maskable feature, the mask width currently applied. A fully specific flow
// has SrcPrefix = DstPrefix = 32 and all Wild* bits false. The zero Key is
// the root of the generalization lattice: every feature fully wildcarded.
type Key struct {
	Proto   Proto
	SrcIP   IPv4
	DstIP   IPv4
	SrcPort uint16
	DstPort uint16

	// SrcPrefix and DstPrefix are the prefix lengths (0..32) applied to
	// SrcIP and DstIP. The address fields always store already-masked
	// values so that Key is directly comparable.
	SrcPrefix uint8
	DstPrefix uint8

	// WildProto, WildSrcPort and WildDstPort generalize the non-IP
	// features away entirely (ports and protocol have no intermediate
	// prefix structure in this model; they are either exact or wild).
	WildProto   bool
	WildSrcPort bool
	WildDstPort bool
}

// Exact builds a fully specific 5-feature key.
func Exact(proto Proto, src, dst IPv4, sport, dport uint16) Key {
	return Key{
		Proto:     proto,
		SrcIP:     src,
		DstIP:     dst,
		SrcPort:   sport,
		DstPort:   dport,
		SrcPrefix: 32,
		DstPrefix: 32,
	}
}

// Root returns the top of the lattice: all features wildcarded.
func Root() Key {
	return Key{WildProto: true, WildSrcPort: true, WildDstPort: true}
}

// normalize zeroes fields hidden behind wildcards/masks so that equal
// generalizations compare equal.
func (k Key) normalize() Key {
	k.SrcIP = k.SrcIP.Mask(k.SrcPrefix)
	k.DstIP = k.DstIP.Mask(k.DstPrefix)
	if k.WildProto {
		k.Proto = 0
	}
	if k.WildSrcPort {
		k.SrcPort = 0
	}
	if k.WildDstPort {
		k.DstPort = 0
	}
	return k
}

// IsRoot reports whether k is the fully wildcarded key.
func (k Key) IsRoot() bool {
	k = k.normalize()
	return k.SrcPrefix == 0 && k.DstPrefix == 0 && k.WildProto && k.WildSrcPort && k.WildDstPort
}

// IsExact reports whether every feature of k is fully specified.
func (k Key) IsExact() bool {
	return k.SrcPrefix == 32 && k.DstPrefix == 32 &&
		!k.WildProto && !k.WildSrcPort && !k.WildDstPort
}

// Generalizes reports whether k is equal to, or an ancestor of, other in the
// feature lattice: every feature of k must contain the corresponding feature
// of other.
func (k Key) Generalizes(other Key) bool {
	k = k.normalize()
	other = other.normalize()
	if k.SrcPrefix > other.SrcPrefix || k.DstPrefix > other.DstPrefix {
		return false
	}
	if other.SrcIP.Mask(k.SrcPrefix) != k.SrcIP || other.DstIP.Mask(k.DstPrefix) != k.DstIP {
		return false
	}
	if !k.WildProto && (other.WildProto || k.Proto != other.Proto) {
		return false
	}
	if !k.WildSrcPort && (other.WildSrcPort || k.SrcPort != other.SrcPort) {
		return false
	}
	if !k.WildDstPort && (other.WildDstPort || k.DstPort != other.DstPort) {
		return false
	}
	return true
}

// GeneralizeStep returns the next generalization of k on the canonical chain
// used by Flowtree, and ok=false when k is already the root. The canonical
// chain generalizes, in order: source port, destination port, protocol, then
// alternately shortens the source and destination prefixes by stepBits.
//
// A deterministic chain (rather than the full lattice) keeps every observed
// flow on a single root path, which is what makes Flowtree a tree rather
// than a DAG.
func (k Key) GeneralizeStep(stepBits uint8) (parent Key, ok bool) {
	if stepBits == 0 {
		stepBits = 8
	}
	k = k.normalize()
	switch {
	case !k.WildSrcPort:
		k.WildSrcPort = true
		k.SrcPort = 0
	case !k.WildDstPort:
		k.WildDstPort = true
		k.DstPort = 0
	case !k.WildProto:
		k.WildProto = true
		k.Proto = 0
	case k.SrcPrefix >= k.DstPrefix && k.SrcPrefix > 0:
		k.SrcPrefix = sub(k.SrcPrefix, stepBits)
		k.SrcIP = k.SrcIP.Mask(k.SrcPrefix)
	case k.DstPrefix > 0:
		k.DstPrefix = sub(k.DstPrefix, stepBits)
		k.DstIP = k.DstIP.Mask(k.DstPrefix)
	default:
		return k, false
	}
	return k, true
}

func sub(a, b uint8) uint8 {
	if b >= a {
		return 0
	}
	return a - b
}

// Chain returns the full generalization chain from k (exclusive) to the root
// (inclusive), using GeneralizeStep with stepBits.
func (k Key) Chain(stepBits uint8) []Key {
	var out []Key
	cur := k
	for {
		next, ok := cur.GeneralizeStep(stepBits)
		if !ok {
			return out
		}
		out = append(out, next)
		cur = next
	}
}

// Depth is the number of generalization steps from the root down to k,
// following the canonical chain. Depth(Root)=0.
func (k Key) Depth(stepBits uint8) int {
	return len(k.Chain(stepBits))
}

// String renders the key in a compact firewall-rule-like syntax, e.g.
// "tcp 10.0.0.0/8:*->192.168.1.5/32:443".
func (k Key) String() string {
	k = k.normalize()
	var b strings.Builder
	if k.WildProto {
		b.WriteByte('*')
	} else {
		b.WriteString(k.Proto.String())
	}
	b.WriteByte(' ')
	b.WriteString(k.SrcIP.String())
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(int(k.SrcPrefix)))
	b.WriteByte(':')
	if k.WildSrcPort {
		b.WriteByte('*')
	} else {
		b.WriteString(strconv.Itoa(int(k.SrcPort)))
	}
	b.WriteString("->")
	b.WriteString(k.DstIP.String())
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(int(k.DstPrefix)))
	b.WriteByte(':')
	if k.WildDstPort {
		b.WriteByte('*')
	} else {
		b.WriteString(strconv.Itoa(int(k.DstPort)))
	}
	return b.String()
}
