module megadata

go 1.22
