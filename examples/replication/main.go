// Command replication compares the Section VII transfer-optimization
// policies side by side on a synthetic enterprise query trace: pure query
// shipping, eager replication, the paper's count/volume heuristics, the
// deterministic ski-rental break-even rule, and the distribution-aware
// threshold trained on older partitions. It prints total WAN bytes, query
// locality, and the competitive ratio against the clairvoyant optimum.
package main

import (
	"fmt"
	"log"
	"time"

	"megadata/internal/replication"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	trace, err := workload.NewQueryTrace(workload.QueryTraceConfig{
		Seed:       1,
		Partitions: 400,
	})
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d accesses over %d partitions (replica cost %d bytes)\n\n",
		len(trace.Accesses), trace.Config.Partitions, trace.Config.PartitionBytes)

	// Train the distribution-aware policy on the first half of the trace
	// ("older partitions"), evaluate everything on the second half.
	mid := trace.Config.Start.Add(trace.Config.Horizon / 2)
	train, eval := trace.SplitAt(mid)
	training := replication.VolumesOf(replication.TotalVolumes(toAccesses(train)))
	distAware, err := replication.FitDistAware(training, trace.Config.PartitionBytes)
	if err != nil {
		return err
	}
	fmt.Printf("dist-aware threshold learned from %d training partitions: %d bytes\n\n",
		len(training), distAware.Threshold())

	policies := []replication.Policy{
		replication.Never{},
		replication.Always{},
		replication.CountThreshold{N: 3},
		replication.VolumeFraction{P: 0.5},
		replication.BreakEven{},
		distAware,
	}
	evalAccesses := toAccesses(eval)
	fmt.Printf("%-16s %14s %10s %12s %12s %8s\n",
		"policy", "WAN bytes", "replicas", "local qry", "mean lat", "ratio")
	for _, p := range policies {
		net := simnet.NewNetwork()
		net.AddSite("edge")
		net.AddSite("dc")
		if err := net.Connect("edge", "dc", simnet.Link{
			BytesPerSecond: 5e6, Latency: 40 * time.Millisecond,
		}); err != nil {
			return err
		}
		res, err := replication.Simulate(replication.SimConfig{
			PartitionBytes: trace.Config.PartitionBytes,
			Local:          "edge", Remote: "dc", Net: net,
		}, p, evalAccesses)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %14d %10d %12d %12s %8.2f\n",
			res.Policy, res.WANBytes, res.Replications, res.LocalQueries,
			res.MeanLatency.Round(time.Millisecond), res.CompetitiveRatio())
	}
	fmt.Println("\nratio = WAN bytes / clairvoyant optimum; break-even is provably <= 2")
	return nil
}

func toAccesses(in []workload.Access) []replication.Access {
	out := make([]replication.Access, len(in))
	for i, a := range in {
		out[i] = replication.Access{Partition: a.Partition, At: a.At, ResultVol: a.ResultVol}
	}
	return out
}
