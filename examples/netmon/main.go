// Command netmon plays through the paper's network-monitoring use case
// (Section II-B): a three-region router hierarchy summarizes flows with
// Flowtrees; a volumetric DDoS attack is injected at two routers; the
// operator detects it at the center with HHH, localizes it with AT-scoped
// queries, and drills down into the attacking prefix — all on compressed
// summaries, never on raw flow data.
package main

import (
	"fmt"
	"log"
	"time"

	"megadata/internal/flow"
	"megadata/internal/flowstream"
	"megadata/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sites := []string{
		"region1-r0", "region1-r1",
		"region2-r0", "region2-r1",
		"region3-r0", "region3-r1",
	}
	sys, err := flowstream.New(flowstream.Config{
		Sites:      sites,
		TreeBudget: 8192,
		Epoch:      time.Minute,
		Shards:     2, // per-site sharded ingest, merged at epoch sealing
	})
	if err != nil {
		return err
	}
	victim, err := flow.ParseIPv4("192.0.2.53")
	if err != nil {
		return err
	}

	// Epoch 0: baseline traffic. Epoch 1: the attack hits region2.
	for epoch := 0; epoch < 2; epoch++ {
		for i, site := range sites {
			gen, err := workload.NewFlowGen(workload.FlowConfig{
				Seed: int64(epoch*100 + i), Skew: 1.15,
			})
			if err != nil {
				return err
			}
			recs := gen.Records(10000)
			if epoch == 1 && (site == "region2-r0" || site == "region2-r1") {
				recs = append(recs, gen.DDoSBurst(4000, victim, 53)...)
			}
			if err := sys.IngestBatch(site, recs); err != nil {
				return err
			}
		}
		if err := sys.EndEpoch(); err != nil {
			return err
		}
	}

	// Step 1: the operator notices unusual heavy hitters globally.
	res, err := sys.Query(`SELECT HHH(0.05) FROM ALL`)
	if err != nil {
		return err
	}
	fmt.Println("== global hierarchical heavy hitters (phi=0.05) ==")
	for _, h := range res.HHH {
		fmt.Printf("  %-46s discounted=%d\n", h.Key, h.Discounted)
	}

	// Step 2: localize — which sites carry traffic to the victim?
	fmt.Println("\n== victim traffic by site ==")
	for _, site := range sites {
		res, err := sys.Query(fmt.Sprintf(
			`SELECT QUERY AT %s FROM ALL WHERE dst = 192.0.2.53`, site))
		if err != nil {
			return err
		}
		marker := ""
		if res.Counters.Bytes > 10_000_000 {
			marker = "  <-- anomalous"
		}
		fmt.Printf("  %-12s %12d bytes%s\n", site, res.Counters.Bytes, marker)
	}

	// Step 3: drill into the attack sources at the affected region.
	fmt.Println("\n== top sources toward the victim (region2 only) ==")
	res, err = sys.Query(`SELECT TOPK(5) AT region2-r0, region2-r1 FROM ALL WHERE src = 203.0.0.0/16`)
	if err != nil {
		return err
	}
	for _, e := range res.Entries {
		fmt.Printf("  %-46s %12d bytes\n", e.Key, e.Counters.Bytes)
	}
	fmt.Printf("\nall of this ran on %d bytes of WAN transfer (compressed summaries)\n", sys.WANBytes())
	return nil
}
