// Command streaming demonstrates the router→store streaming front end: two
// router sites emit continuous framed flow streams that a flowsource.Source
// decodes, coalesces into bounded batches and feeds to sharded site stores
// with backpressure — no epoch is ever materialized as a record slice. The
// rest of the Figure 5 pipeline (seal, WAN export, FlowDB, FlowQL) runs
// unchanged behind it.
package main

import (
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	"megadata/internal/flowsource"
	"megadata/internal/flowstream"
	"megadata/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sites := []string{"berlin", "paris"}
	// 1. A Flowstream deployment with a streaming source in front of the
	//    stores: batches of up to 2048 records, flushed after 20ms at the
	//    latest, four buffered batches per site before the router blocks.
	sys, err := flowstream.New(flowstream.Config{
		Sites:      sites,
		TreeBudget: 4096,
		Epoch:      time.Minute,
		Shards:     4,
		Source: &flowsource.Config{
			MaxBatch:      2048,
			FlushInterval: 20 * time.Millisecond,
			ChannelDepth:  4,
			Policy:        flowsource.PolicyBlock,
		},
	})
	if err != nil {
		return err
	}

	// 2. One paced generator per site replays router traffic as framed
	//    records into a pipe; ConsumeStream decodes and batches the other
	//    end. Three epochs, 20k flows per site per epoch.
	gens := make([]*flowsource.Generator, len(sites))
	for i := range sites {
		g, err := flowsource.NewGenerator(flowsource.GenConfig{
			Workload: workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2},
			Records:  20000,
			Epoch:    time.Minute,
			Clock:    sys.Clock,
		})
		if err != nil {
			return err
		}
		gens[i] = g
	}
	for epoch := 0; epoch < 3; epoch++ {
		var wg sync.WaitGroup
		errs := make([]error, 2*len(sites))
		for i, site := range sites {
			pr, pw := io.Pipe()
			wg.Add(2)
			go func(i int, g *flowsource.Generator, pw *io.PipeWriter) {
				defer wg.Done()
				_, err := g.WriteEpoch(pw)
				pw.CloseWithError(err)
				errs[2*i] = err
			}(i, gens[i], pw)
			go func(i int, site string, pr *io.PipeReader) {
				defer wg.Done()
				errs[2*i+1] = sys.ConsumeStream(site, pr)
			}(i, site, pr)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		// 3. Sealing drains the source first, so the epoch summary covers
		//    every streamed record.
		if err := sys.EndEpoch(); err != nil {
			return err
		}
	}
	st := sys.SourceStats()
	fmt.Printf("streamed %d records in %d batches (dropped %d, truncated %d, peak %d queued)\n",
		st.Frames, st.Batches, st.Dropped, st.Truncated, st.PeakQueued)
	fmt.Printf("WAN bytes shipped: %d, FlowDB rows: %d\n", sys.WANBytes(), sys.DB.Len())

	// 4. FlowQL at the center, over the streamed epochs.
	res, err := sys.Query(`SELECT QUERY FROM ALL`)
	if err != nil {
		return err
	}
	fmt.Printf("flowql> SELECT QUERY FROM ALL -> %d merged summaries, %d flows\n",
		res.Merged, res.Counters.Flows)
	top, err := sys.Query(`SELECT TOPK(3) FROM ALL`)
	if err != nil {
		return err
	}
	fmt.Printf("flowql> SELECT TOPK(3) FROM ALL -> %d heavy hitters\n", len(top.Entries))
	return sys.Source().Close()
}
