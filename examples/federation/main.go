// Command federation demonstrates the Section IV cross-data-store query
// path: an analyst at the edge repeatedly queries a remote site's
// summaries. The demo runs the same query sequence three times — with pure
// query shipping, with the reactive result cache, and with break-even
// adaptive replication — and prints what each mechanism saves.
package main

import (
	"fmt"
	"log"
	"time"

	"megadata/internal/federation"
	"megadata/internal/flowdb"
	"megadata/internal/flowtree"
	"megadata/internal/replication"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildFed constructs a fresh two-site federation with identical data.
func buildFed(policy replication.Policy) (*federation.Federation, *simnet.Network, error) {
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)
	net := simnet.NewNetwork()
	clock := simnet.NewClock(start)
	fed := federation.New(net, clock, policy)
	for i, site := range []simnet.SiteID{"edge", "dc"} {
		db := flowdb.New()
		for epoch := 0; epoch < 4; epoch++ {
			g, err := workload.NewFlowGen(workload.FlowConfig{
				Seed: int64(i*100 + epoch), Skew: 1.2,
			})
			if err != nil {
				return nil, nil, err
			}
			tree, err := flowtree.New(2048)
			if err != nil {
				return nil, nil, err
			}
			for _, r := range g.Records(5000) {
				tree.Add(r)
			}
			if err := db.Insert(flowdb.Row{
				Location: string(site),
				Start:    start.Add(time.Duration(epoch) * time.Hour),
				Width:    time.Hour,
				Tree:     tree,
			}); err != nil {
				return nil, nil, err
			}
		}
		fed.AddSite(site, db)
	}
	err := net.Connect("edge", "dc", simnet.Link{BytesPerSecond: 2e6, Latency: 40 * time.Millisecond})
	if err != nil {
		return nil, nil, err
	}
	return fed, net, nil
}

// queries is the analyst's session: the same dashboard query repeated,
// with an occasional distinct drill-down.
var queries = []string{
	`SELECT TOPK(10) AT dc FROM ALL`,
	`SELECT TOPK(10) AT dc FROM ALL`,
	`SELECT HHH(0.02) AT dc FROM ALL`,
	`SELECT TOPK(10) AT dc FROM ALL`,
	`SELECT TOPK(10) AT dc FROM ALL`,
	`SELECT QUERY AT dc FROM ALL WHERE src = 10.0.0.0/8`,
	`SELECT TOPK(10) AT dc FROM ALL`,
	`SELECT TOPK(10) AT dc FROM ALL`,
}

func run() error {
	type setup struct {
		name   string
		policy replication.Policy
		cache  bool
	}
	for _, cfg := range []setup{
		{name: "ship every query", policy: replication.Never{}},
		{name: "reactive cache", policy: replication.Never{}, cache: true},
		{name: "break-even replication", policy: replication.BreakEven{}},
	} {
		fed, net, err := buildFed(cfg.policy)
		if err != nil {
			return err
		}
		if cfg.cache {
			cache, err := federation.NewResultCache(1 << 20)
			if err != nil {
				return err
			}
			fed.SetCache(cache)
		}
		var shipped, cached, local int
		var worstLatency time.Duration
		for _, q := range queries {
			_, stats, err := fed.Query("edge", q)
			if err != nil {
				return err
			}
			shipped += stats.ShippedSites
			cached += stats.CachedSites
			local += stats.LocalSites
			if stats.Latency > worstLatency {
				worstLatency = stats.Latency
			}
		}
		fmt.Printf("%-24s shipped=%d cached=%d replica/local=%d WAN=%8d bytes worst-latency=%s\n",
			cfg.name, shipped, cached, local, net.TotalStats().Bytes,
			worstLatency.Round(time.Millisecond))
	}
	fmt.Println("\nthe cache keys on the shipped data window: any operator over an")
	fmt.Println("already-cached window is free, but new windows ship again (the")
	fmt.Println("paper's caveat that caching is the more constrained approach);")
	fmt.Println("replication pays once and then serves everything locally")
	return nil
}
