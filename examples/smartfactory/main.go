// Command smartfactory plays through the paper's smart-factory use case
// (Section II-A) end to end: machines stream temperature readings into an
// edge data store; a trigger drives the local controller's real-time
// control cycle (an overheating machine is stopped within one reading); the
// slower adaptive cycle runs a predictive-maintenance analytics pipeline
// that fits a degradation trend on the aggregated statistics and installs a
// maintenance rule before the machine ever crosses its limit.
package main

import (
	"fmt"
	"log"
	"time"

	"megadata/internal/analytics"
	"megadata/internal/controller"
	"megadata/internal/datastore"
	"megadata/internal/primitive"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

const overheatLimit = 95.0

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	start := time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

	// The edge data store aggregates per-minute statistics per machine
	// (Figure 4). It runs on a virtual clock that the sensor loop drives.
	clock := simnet.NewClock(start)
	store := datastore.New("line1-edge", clock.Now)

	// The controller actuates machines (Figure 3a control cycle); each
	// distinct actuation is printed once.
	acted := make(map[string]bool)
	ctl := controller.New("line1-ctl", controller.ActuatorFunc(
		func(target string, action controller.Action, setpoint float64) {
			key := target + action.String()
			if acted[key] {
				return
			}
			acted[key] = true
			fmt.Printf("[controller] %s -> %s (setpoint %.0f)\n", target, action, setpoint)
		}), nil)

	machines := []string{"m0", "m1", "m2"}
	for _, m := range machines {
		m := m
		err := store.Register(datastore.AggregatorConfig{
			Name: "temps-" + m,
			New: func() (primitive.Aggregator, error) {
				return primitive.NewStats("temps-"+m, time.Minute, 0, 0)
			},
			Strategy: datastore.StrategyExpire,
			TTL:      24 * time.Hour,
		})
		if err != nil {
			return err
		}
		if err := store.Subscribe("line1/"+m+"/temp", "temps-"+m); err != nil {
			return err
		}
		err = store.InstallTrigger(datastore.Trigger{
			Name:   "overheat-" + m,
			Stream: "line1/" + m + "/temp",
			Condition: func(item any) bool {
				r, ok := item.(primitive.Reading)
				return ok && r.Value > overheatLimit
			},
			Fire: ctl.OnTrigger,
		})
		if err != nil {
			return err
		}
		if err := ctl.Install(controller.Rule{
			Name: "stop-" + m, App: "safety", Trigger: "overheat-" + m,
			Actuator: "line1/" + m + "/motor", Action: controller.ActionStop, Priority: 10,
		}); err != nil {
			return err
		}
	}

	// m1 degrades (temperature drifts upward); m2 suffers a sudden fault.
	sensors := make(map[string]*workload.Sensor, len(machines))
	for i, m := range machines {
		cfg := workload.SensorConfig{
			Name: "line1/" + m + "/temp", Seed: int64(i), Base: 60, Noise: 1,
			Interval: time.Second, Start: start,
		}
		if m == "m1" {
			cfg.Drift = 10 // degrees per hour: the predictive-maintenance signal
		}
		s, err := workload.NewSensor(cfg)
		if err != nil {
			return err
		}
		if m == "m2" {
			s.InjectFault(start.Add(30*time.Minute), start.Add(31*time.Minute), 50)
		}
		sensors[m] = s
	}

	// Stream two hours of readings (1/s per machine).
	fmt.Println("== control cycle: streaming 2h of readings ==")
	for i := 0; i < 7200; i++ {
		clock.Advance(time.Second)
		for _, m := range machines {
			r := sensors[m].Next()
			if err := store.Ingest(r.Sensor, primitive.Reading{At: r.At, Value: r.Value}); err != nil {
				return err
			}
		}
	}
	stops := len(ctl.Log())
	fmt.Printf("trigger-driven actuations: %d (m2's fault was caught in real time)\n\n", stops)

	// Adaptive cycle (Figure 3a right): the analytics pipeline reads the
	// aggregated per-minute means and fits a degradation trend per
	// machine.
	fmt.Println("== adaptive cycle: predictive maintenance ==")
	for _, m := range machines {
		res, err := store.Query("temps-"+m,
			primitive.StatsQuery{From: start, To: start.Add(2 * time.Hour), Stat: primitive.StatMean},
			start, start.Add(2*time.Hour))
		if err != nil {
			return err
		}
		points := res.([]primitive.StatPoint)
		tp := make([]analytics.TrendPoint, len(points))
		for i, p := range points {
			tp[i] = analytics.TrendPoint{X: p.Start.Sub(start).Hours(), Y: p.Value}
		}
		trend, err := analytics.FitTrend(tp)
		if err != nil {
			return err
		}
		hrs, rising := trend.CrossingX(overheatLimit)
		if !rising || hrs > 24 {
			fmt.Printf("  %s: healthy (slope %+.2f degrees/h)\n", m, trend.Slope)
			continue
		}
		fmt.Printf("  %s: predicted to reach %.0f degrees in %.1fh -> scheduling maintenance\n",
			m, overheatLimit, hrs)
		if err := ctl.Install(controller.Rule{
			Name: "maint-" + m, App: "predictive-maintenance",
			Trigger: "overheat-" + m, Actuator: "line1/" + m + "/motor",
			Action: controller.ActionSlowDown, Setpoint: 50, Priority: 5,
		}); err != nil {
			return err
		}
	}
	fmt.Printf("\ninstalled rules: %d\n", len(ctl.Rules()))
	return nil
}
