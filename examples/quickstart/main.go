// Command quickstart is a 5-minute tour of the library: stand up a
// two-site Flowstream deployment (Figure 5 of the paper), ingest synthetic
// router flows, and answer FlowQL queries at the center.
package main

import (
	"fmt"
	"log"
	"time"

	"megadata/internal/flowstream"
	"megadata/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A Flowstream deployment: two router sites, one central FlowDB,
	//    Flowtrees capped at 4096 nodes. Each site ingests through four
	//    hash-partitioned shards that are merged back at epoch sealing.
	sys, err := flowstream.New(flowstream.Config{
		Sites:      []string{"berlin", "paris"},
		TreeBudget: 4096,
		Epoch:      time.Minute,
		Shards:     4,
		BatchSize:  4096,
	})
	if err != nil {
		return err
	}

	// 2. Three one-minute epochs of synthetic traffic per site.
	for epoch := 0; epoch < 3; epoch++ {
		for i, site := range []string{"berlin", "paris"} {
			gen, err := workload.NewFlowGen(workload.FlowConfig{
				Seed: int64(epoch*10 + i),
				Skew: 1.2,
			})
			if err != nil {
				return err
			}
			if err := sys.IngestBatch(site, gen.Records(20000)); err != nil {
				return err
			}
		}
		if err := sys.EndEpoch(); err != nil {
			return err
		}
	}
	fmt.Printf("ingested 120000 flows across 2 sites x 3 epochs\n")
	fmt.Printf("WAN bytes shipped to the center: %d (vs ~4.8MB raw)\n\n", sys.WANBytes())

	// 3. FlowQL queries against the merged summaries.
	for _, stmt := range []string{
		`SELECT QUERY FROM ALL`,
		`SELECT QUERY AT berlin FROM ALL WHERE src = 10.0.0.0/8`,
		`SELECT TOPK(5) FROM ALL`,
		`SELECT HHH(0.02) FROM ALL`,
	} {
		res, err := sys.Query(stmt)
		if err != nil {
			return err
		}
		fmt.Printf("flowql> %s\n", stmt)
		switch {
		case len(res.HHH) > 0:
			fmt.Printf("  %d hierarchical heavy hitters; heaviest: %v\n\n", len(res.HHH), res.HHH[0].Key)
		case len(res.Entries) > 0:
			fmt.Printf("  top flow: %v (%d bytes)\n\n", res.Entries[0].Key, res.Entries[0].Counters.Bytes)
		default:
			fmt.Printf("  packets=%d bytes=%d flows=%d\n\n",
				res.Counters.Packets, res.Counters.Bytes, res.Counters.Flows)
		}
	}
	return nil
}
