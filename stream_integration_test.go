package megadata

import (
	"bytes"
	"testing"
	"time"

	"megadata/internal/baseline"
	"megadata/internal/flow"
	"megadata/internal/flowsource"
	"megadata/internal/flowstream"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

// TestIntegrationStreamingPipelineWithFaults drives the complete streaming
// Figure 5 story under injected WAN faults and pins it to an exact serial
// reference:
//
//	workload generator → framed record streams → flowsource (bounded
//	batches, shard-partitioned) → sharded site stores → pipelined EndEpoch
//	(every 3rd transfer failing transiently, re-shipped from retention) →
//	FlowDB → FlowQL
//
// The trees run unbudgeted, so every FlowQL answer must equal the exact
// baseline byte for byte — any record lost in batching, sealing, export
// retry or decode would surface as a counter mismatch.
func TestIntegrationStreamingPipelineWithFaults(t *testing.T) {
	sites := []string{"r0", "r1", "r2"}
	sys, err := flowstream.New(flowstream.Config{
		Sites:      sites,
		TreeBudget: 0, // exact summaries: the reference comparison is strict
		Epoch:      time.Minute,
		Shards:     2,
		Link: simnet.Link{
			BytesPerSecond: 10e6,
			Latency:        5 * time.Millisecond,
			FailEvery:      3, // every 3rd transfer attempt fails transiently
		},
		Source: &flowsource.Config{
			MaxBatch:      512,
			FlushInterval: 5 * time.Millisecond,
			ChannelDepth:  2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := baseline.New()
	const epochs = 4
	const perSite = 3000
	for epoch := 0; epoch < epochs; epoch++ {
		for i, site := range sites {
			g, err := workload.NewFlowGen(workload.FlowConfig{
				Seed: int64(epoch*31 + i), Sources: 1024, Destinations: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			recs := g.Records(perSite)
			var wire []byte
			for _, r := range recs {
				exact.Add(r)
				wire = flowsource.AppendFrame(wire, r)
			}
			// Corrupt the inter-frame gap, not the frames: the decoder
			// must resynchronize without losing a single record.
			wire = append([]byte{0xDE, 0xAD}, wire...)
			if err := sys.ConsumeStream(site, bytes.NewReader(wire)); err != nil {
				t.Fatal(err)
			}
		}
		// EndEpoch drains the source, seals every site off-lock, ships
		// epochs through the faulty WAN (transient failures queue for
		// re-shipment) and batch-inserts the decoded rows into FlowDB.
		if err := sys.EndEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// Deliver everything the faulty link deferred. FailEvery=3 keeps
	// failing during re-export, so loop with a cap.
	for i := 0; sys.PendingExports() > 0; i++ {
		if i > 20 {
			t.Fatalf("pending exports never drained: %d left", sys.PendingExports())
		}
		if _, err := sys.ReExportPending(); err != nil {
			t.Fatal(err)
		}
	}
	if got := sys.DB.Len(); got != len(sites)*epochs {
		t.Fatalf("FlowDB holds %d rows, want %d", got, len(sites)*epochs)
	}
	st := sys.SourceStats()
	if st.Delivered != uint64(len(sites)*epochs*perSite) || st.Dropped != 0 {
		t.Fatalf("source stats %+v", st)
	}
	if st.Truncated == 0 {
		t.Fatal("injected garbage was not counted")
	}
	net := sys.Net.TotalStats()
	if net.Failures == 0 {
		t.Fatal("fault injection never fired")
	}

	// Global totals, exact.
	res, err := sys.Query(`SELECT QUERY FROM ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != exact.Total() {
		t.Fatalf("pipeline total %+v != exact %+v", res.Counters, exact.Total())
	}
	// Prefix-restricted totals, exact.
	for _, prefix := range []struct {
		stmt string
		key  flow.Key
	}{
		{`SELECT QUERY FROM ALL WHERE src = 10.0.0.0/8`,
			flow.Key{SrcIP: flow.IPv4(10 << 24), SrcPrefix: 8, WildProto: true, WildSrcPort: true, WildDstPort: true}},
		{`SELECT QUERY FROM ALL WHERE src = 10.0.1.0/24`,
			flow.Key{SrcIP: flow.IPv4(10<<24 | 1<<8), SrcPrefix: 24, WildProto: true, WildSrcPort: true, WildDstPort: true}},
	} {
		res, err := sys.Query(prefix.stmt)
		if err != nil {
			t.Fatal(err)
		}
		if want := exact.Query(prefix.key); res.Counters != want {
			t.Errorf("%s: pipeline %+v != exact %+v", prefix.stmt, res.Counters, want)
		}
	}
	// Top-k agrees with the exact reference on the heaviest flow.
	top, err := sys.Query(`SELECT TOPK(5) FROM ALL`)
	if err != nil {
		t.Fatal(err)
	}
	exactTop := exact.TopK(5, flow.ScoreBytes)
	if len(top.Entries) == 0 || len(exactTop) == 0 {
		t.Fatal("empty top-k")
	}
	if top.Entries[0].Counters.Bytes != exactTop[0].Counters.Bytes {
		t.Errorf("heaviest flow %d bytes, exact %d", top.Entries[0].Counters.Bytes, exactTop[0].Counters.Bytes)
	}
	if err := sys.Source().Close(); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationStreamingDropPolicyAccounts runs the pipeline under
// PolicyDrop with a single-batch channel and asserts the
// delivered+dropped ledger stays exact and that the central totals match
// exactly what the source reports as delivered — whether or not the
// consumer fell behind enough to shed on this run. The backpressure
// alternative is covered by the faults test above.
func TestIntegrationStreamingDropPolicyAccounts(t *testing.T) {
	sys, err := flowstream.New(flowstream.Config{
		Sites:  []string{"r0"},
		Epoch:  time.Minute,
		Shards: 2,
		Source: &flowsource.Config{
			MaxBatch:      64,
			ChannelDepth:  1,
			Policy:        flowsource.PolicyDrop,
			FlushInterval: time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(5000)
	var wire []byte
	for _, r := range recs {
		wire = flowsource.AppendFrame(wire, r)
	}
	if err := sys.ConsumeStream("r0", bytes.NewReader(wire)); err != nil {
		t.Fatal(err)
	}
	if err := sys.EndEpoch(); err != nil {
		t.Fatal(err)
	}
	st := sys.SourceStats()
	if st.Delivered+st.Dropped != uint64(len(recs)) {
		t.Fatalf("ledger leak: delivered %d + dropped %d != %d", st.Delivered, st.Dropped, len(recs))
	}
	res, err := sys.Query(`SELECT QUERY FROM ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Flows != st.Delivered {
		t.Fatalf("central sees %d flows, source delivered %d", res.Counters.Flows, st.Delivered)
	}
	if err := sys.Source().Close(); err != nil {
		t.Fatal(err)
	}
}
