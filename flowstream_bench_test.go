package megadata

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/flowstream"
	"megadata/internal/workload"
)

// benchFlowstream measures the Figure 5 path: ingest at every site, seal
// the epoch, export to the center, and answer one FlowQL query.
func benchFlowstream(b *testing.B, sites, flowsPerSite int) {
	b.Helper()
	names := make([]string, sites)
	for i := range names {
		names[i] = fmt.Sprintf("site%d", i)
	}
	gens := make([]*workload.FlowGen, sites)
	for i := range gens {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2})
		if err != nil {
			b.Fatal(err)
		}
		gens[i] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := flowstream.New(flowstream.Config{
			Sites: names, TreeBudget: 4096, Epoch: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for s, site := range names {
			if err := sys.Ingest(site, gens[s].Records(flowsPerSite)); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.EndEpoch(); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Query(`SELECT TOPK(10) FROM ALL`); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sites*flowsPerSite), "flows/op")
}
