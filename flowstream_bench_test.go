package megadata

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/flowstream"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

// benchFlowstream measures the Figure 5 path: ingest at every site, seal
// the epoch, export to the center, and answer one FlowQL query.
func benchFlowstream(b *testing.B, sites, flowsPerSite int) {
	b.Helper()
	names := make([]string, sites)
	for i := range names {
		names[i] = fmt.Sprintf("site%d", i)
	}
	gens := make([]*workload.FlowGen, sites)
	for i := range gens {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2})
		if err != nil {
			b.Fatal(err)
		}
		gens[i] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := flowstream.New(flowstream.Config{
			Sites: names, TreeBudget: 4096, Epoch: time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for s, site := range names {
			if err := sys.Ingest(site, gens[s].Records(flowsPerSite)); err != nil {
				b.Fatal(err)
			}
		}
		if err := sys.EndEpoch(); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Query(`SELECT TOPK(10) FROM ALL`); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sites*flowsPerSite), "flows/op")
}

// BenchmarkEndEpoch measures epoch-export turnaround across a sites ×
// shards grid, comparing the serial per-site export (one worker) against
// the concurrent seal->ship->index pipeline. The WAN is paced
// (simnet.SetRealtime): every transfer occupies real wall-clock time for
// its computed duration, so the number measured is what the paper's
// constrained-WAN story is about — the serial exporter pays the sum of all
// sites' link occupancy, the pipeline pays roughly the slowest site.
func BenchmarkEndEpoch(b *testing.B) {
	for _, sites := range []int{1, 4, 8} {
		for _, shards := range []int{1, 4} {
			for _, mode := range []struct {
				name    string
				workers int
			}{{"serial", 1}, {"pipelined", 0}} {
				b.Run(fmt.Sprintf("sites=%d/shards=%d/%s", sites, shards, mode.name), func(b *testing.B) {
					benchEndEpoch(b, sites, shards, mode.workers)
				})
			}
		}
	}
}

func benchEndEpoch(b *testing.B, sites, shards, workers int) {
	b.Helper()
	names := make([]string, sites)
	for i := range names {
		names[i] = fmt.Sprintf("site%d", i)
	}
	sys, err := flowstream.New(flowstream.Config{
		Sites:         names,
		TreeBudget:    2048,
		Epoch:         time.Minute,
		Shards:        shards,
		ExportWorkers: workers,
		Link:          simnet.Link{BytesPerSecond: 2e6, Latency: 2 * time.Millisecond},
	})
	if err != nil {
		b.Fatal(err)
	}
	sys.Net.SetRealtime(1.0)
	gens := make([]*workload.FlowGen, sites)
	for i := range gens {
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Skew: 1.2})
		if err != nil {
			b.Fatal(err)
		}
		gens[i] = g
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for s, site := range names {
			if err := sys.Ingest(site, gens[s].Records(4000)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := sys.EndEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	if sys.PendingExports() != 0 {
		b.Fatalf("pending exports after benchmark: %d", sys.PendingExports())
	}
}
