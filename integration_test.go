package megadata

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/analytics"
	"megadata/internal/baseline"
	"megadata/internal/controller"
	"megadata/internal/datastore"
	"megadata/internal/federation"
	"megadata/internal/flow"
	"megadata/internal/flowdb"
	"megadata/internal/flowstream"
	"megadata/internal/flowtree"
	"megadata/internal/lineage"
	"megadata/internal/manager"
	"megadata/internal/primitive"
	"megadata/internal/privacy"
	"megadata/internal/replication"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

var integrationStart = time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC)

// TestIntegrationNetworkMonitoringPipeline runs the whole Figure 5 story
// and cross-checks every FlowQL answer against the exact baseline.
func TestIntegrationNetworkMonitoringPipeline(t *testing.T) {
	sites := []string{"r0", "r1", "r2"}
	sys, err := flowstream.New(flowstream.Config{
		Sites: sites, TreeBudget: 0, Epoch: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	exact := baseline.New()
	for epoch := 0; epoch < 4; epoch++ {
		for i, site := range sites {
			g, err := workload.NewFlowGen(workload.FlowConfig{
				Seed: int64(epoch*7 + i), Sources: 1024, Destinations: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			recs := g.Records(2000)
			for _, r := range recs {
				exact.Add(r)
			}
			if err := sys.Ingest(site, recs); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.EndEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	// Global totals agree with ground truth.
	res, err := sys.Query(`SELECT QUERY FROM ALL`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != exact.Total() {
		t.Fatalf("pipeline total %+v != exact %+v", res.Counters, exact.Total())
	}
	// Prefix-restricted totals agree too (no compression configured).
	for _, prefix := range []string{"10.0.0.0/8", "10.0.0.0/16", "10.0.1.0/24"} {
		res, err := sys.Query(`SELECT QUERY FROM ALL WHERE src = ` + prefix)
		if err != nil {
			t.Fatal(err)
		}
		var key flow.Key
		var a, b2, c, d byte
		var bits uint8
		if _, err := fmt.Sscanf(prefix, "%d.%d.%d.%d/%d", &a, &b2, &c, &d, &bits); err != nil {
			t.Fatal(err)
		}
		key = flow.Key{
			SrcIP:     flow.IPv4(uint32(a)<<24 | uint32(b2)<<16 | uint32(c)<<8 | uint32(d)),
			SrcPrefix: bits, WildProto: true, WildSrcPort: true, WildDstPort: true,
		}
		if want := exact.Query(key); res.Counters != want {
			t.Errorf("prefix %s: pipeline %+v != exact %+v", prefix, res.Counters, want)
		}
	}
}

// TestIntegrationFaultySensorStory exercises the Section III-C lineage use
// case end to end: a faulty sensor contaminates an aggregate, an
// application detects the anomaly, lineage walks upstream to the sensor and
// downstream to the affected applications, and the offending application's
// rules are retracted from the controller.
func TestIntegrationFaultySensorStory(t *testing.T) {
	clock := simnet.NewClock(integrationStart)
	store := datastore.New("edge", clock.Now)
	if err := store.Register(datastore.AggregatorConfig{
		Name: "temps",
		New: func() (primitive.Aggregator, error) {
			return primitive.NewStats("temps", time.Minute, 0, 0)
		},
		Strategy: datastore.StrategyExpire, TTL: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	for _, sensor := range []string{"s0", "s1"} {
		if err := store.Subscribe(sensor, "temps"); err != nil {
			t.Fatal(err)
		}
	}

	// Lineage graph mirrors the deployment.
	graph := lineage.NewSchemaGraph()
	graph.AddNode("s0", lineage.KindSensor)
	graph.AddNode("s1", lineage.KindSensor)
	graph.AddNode("temps", lineage.KindAggregator)
	graph.AddNode("monitor-app", lineage.KindApplication)
	for _, tr := range []lineage.Transform{
		{Src: "s0", Dst: "temps", Format: "reading"},
		{Src: "s1", Dst: "temps", Format: "reading"},
		{Src: "temps", Dst: "monitor-app", Format: "timebins-60s"},
	} {
		if err := graph.AddTransform(tr); err != nil {
			t.Fatal(err)
		}
	}

	ctl := controller.New("ctl", nil, clock.Now)
	if err := ctl.Install(controller.Rule{
		Name: "tune", App: "monitor-app", Trigger: "drift", Actuator: "m0",
		Action: controller.ActionSet, Setpoint: 42,
	}); err != nil {
		t.Fatal(err)
	}

	// s0 is healthy; s1 is faulty (reads 400 degrees).
	healthy, err := workload.NewSensor(workload.SensorConfig{
		Name: "s0", Seed: 1, Base: 60, Noise: 1, Interval: time.Second, Start: integrationStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := workload.NewSensor(workload.SensorConfig{
		Name: "s1", Seed: 2, Base: 400, Noise: 1, Interval: time.Second, Start: integrationStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		clock.Advance(time.Second)
		r := healthy.Next()
		if err := store.Ingest("s0", primitive.Reading{At: r.At, Value: r.Value}); err != nil {
			t.Fatal(err)
		}
		r = faulty.Next()
		if err := store.Ingest("s1", primitive.Reading{At: r.At, Value: r.Value}); err != nil {
			t.Fatal(err)
		}
	}

	// The application sees an absurd mean and investigates.
	res, err := store.Query("temps",
		primitive.StatsQuery{From: integrationStart, To: integrationStart.Add(time.Hour), Stat: primitive.StatMean},
		integrationStart, integrationStart.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	points := res.([]primitive.StatPoint)
	if len(points) == 0 || points[0].Value < 100 {
		t.Fatalf("contamination not visible: %v", points)
	}
	// Lineage: which sensors feed this aggregate?
	suspects := graph.Upstream("temps")
	if len(suspects) != 2 {
		t.Fatalf("suspects = %v", suspects)
	}
	// Which applications consumed contaminated data?
	contaminated := graph.Downstream("s1")
	foundApp := false
	for _, n := range contaminated {
		if n == "monitor-app" {
			foundApp = true
		}
	}
	if !foundApp {
		t.Fatalf("downstream of faulty sensor = %v", contaminated)
	}
	// Retract the contaminated application's rules (the paper's "retract
	// erroneous rules").
	if n := ctl.RemoveApp("monitor-app"); n != 1 {
		t.Errorf("retracted %d rules", n)
	}
	if len(ctl.Rules()) != 0 {
		t.Error("rules remain after retraction")
	}
}

// TestIntegrationManagerAdaptsFederation runs the manager's two control
// knobs together: budget-driven granularity adaptation and access-driven
// replication inside a federation.
func TestIntegrationManagerAdaptsFederation(t *testing.T) {
	net := simnet.NewNetwork()
	clock := simnet.NewClock(integrationStart)
	fed := federation.New(net, clock, replication.BreakEven{})

	// Build two sites with real traffic.
	for i, site := range []simnet.SiteID{"edge", "dc"} {
		db := flowdb.New()
		g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1), Sources: 256})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := flowtree.New(0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range g.Records(3000) {
			tr.Add(r)
		}
		if err := db.Insert(flowdb.Row{
			Location: string(site), Start: integrationStart, Width: time.Hour, Tree: tr,
		}); err != nil {
			t.Fatal(err)
		}
		fed.AddSite(site, db)
	}
	if err := net.Connect("edge", "dc", simnet.Link{BytesPerSecond: 1e6, Latency: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}

	// Repeated cross-site queries must eventually replicate under
	// break-even and stop paying WAN latency.
	var lastStats federation.QueryStats
	for i := 0; i < 50; i++ {
		_, stats, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`)
		if err != nil {
			t.Fatal(err)
		}
		lastStats = stats
	}
	if lastStats.ShippedSites != 0 {
		t.Errorf("queries still shipping after 50 accesses under break-even: %+v", lastStats)
	}
	// Break-even bound: WAN bytes <= shipped-before-replication +
	// replica <= 2x replica + one result.
	if _, ok := fed.ReplicaAsOf("edge", "dc"); !ok {
		t.Error("no replica installed")
	}

	// Manager budget adaptation on a live data store.
	m := manager.New(clock.Now)
	s := datastore.New("edge-store", clock.Now)
	if err := s.Register(datastore.AggregatorConfig{
		Name: "flows",
		New: func() (primitive.Aggregator, error) {
			return primitive.NewFlowtree("flows", 100000)
		},
		Strategy: datastore.StrategyRoundRobin, BudgetBytes: 1 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	m.AttachStore(s, 80000)
	if err := m.Require(manager.Requirement{App: "netops", Store: "edge-store", Aggregator: "flows", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Apply(); err != nil {
		t.Fatal(err)
	}
	live, err := s.Live("flows")
	if err != nil {
		t.Fatal(err)
	}
	if live.Granularity() != 2000 { // 80000 bytes / 40 per node
		t.Errorf("adapted granularity = %d, want 2000", live.Granularity())
	}
}

// TestIntegrationPrivacyOnExportPath verifies that a privacy policy applied
// at the export boundary keeps totals intact while hiding hosts, matching
// the Section III-C claim that local controllers keep full detail while
// analytics sees coarsened data.
func TestIntegrationPrivacyOnExportPath(t *testing.T) {
	g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 11, Sources: 512})
	if err != nil {
		t.Fatal(err)
	}
	recs := g.Records(5000)
	local, err := flowtree.New(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		local.Add(r)
	}
	policy := privacy.PolicyFor(privacy.AudienceGlobalAnalytics)
	export, err := privacy.Apply(local, policy)
	if err != nil {
		t.Fatal(err)
	}
	// Export goes through the wire codec like any other summary.
	wire := export.AppendBinary(nil)
	remote, err := flowtree.Decode(wire, 0)
	if err != nil {
		t.Fatal(err)
	}
	if remote.Total() != local.Total() {
		t.Errorf("privacy-filtered export lost weight: %+v vs %+v", remote.Total(), local.Total())
	}
	if leaks := privacy.Leaks(remote, policy); len(leaks) != 0 {
		t.Errorf("wire round-trip leaked %d keys", len(leaks))
	}
	// The local (controller) view still answers exact-host queries.
	probe := recs[0].Key
	if local.Query(probe).IsZero() {
		t.Error("local view lost exact detail")
	}
	if !remote.Query(probe).IsZero() && policy.MaxSrcPrefix < 32 {
		// The exported tree may still cover the probe through a
		// coarse ancestor; what it must not do is hold the exact key.
		for _, e := range remote.Entries() {
			if e.Key == probe {
				t.Error("exact host key crossed the privacy boundary")
			}
		}
	}
}

// TestIntegrationAnalyticsPipelineFromStore runs a Figure 2a analytics
// pipeline fed by data-store output through the pub-sub bus.
func TestIntegrationAnalyticsPipelineFromStore(t *testing.T) {
	bus := analytics.NewBus(64)
	defer bus.Close()
	sub, err := bus.Subscribe("temps/means")
	if err != nil {
		t.Fatal(err)
	}

	clock := simnet.NewClock(integrationStart)
	store := datastore.New("edge", clock.Now)
	if err := store.Register(datastore.AggregatorConfig{
		Name: "temps",
		New: func() (primitive.Aggregator, error) {
			return primitive.NewStats("temps", time.Minute, 0, 0)
		},
		Strategy: datastore.StrategyExpire, TTL: time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.Subscribe("t", "temps"); err != nil {
		t.Fatal(err)
	}
	s, err := workload.NewSensor(workload.SensorConfig{
		Name: "t", Seed: 3, Base: 50, Noise: 0.1, Drift: 6,
		Interval: time.Second, Start: integrationStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1800; i++ { // 30 minutes
		clock.Advance(time.Second)
		r := s.Next()
		if err := store.Ingest("t", primitive.Reading{At: r.At, Value: r.Value}); err != nil {
			t.Fatal(err)
		}
	}
	// Publish the per-minute means onto the bus (transfer stage).
	res, err := store.Query("temps",
		primitive.StatsQuery{From: integrationStart, To: integrationStart.Add(time.Hour), Stat: primitive.StatMean},
		integrationStart, integrationStart.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.([]primitive.StatPoint) {
		bus.Publish("temps/means", p)
	}

	// Process stage: collect, filter, infer.
	var points []analytics.TrendPoint
	pipe, err := analytics.NewPipeline("maintenance",
		analytics.Filter(func(item any) bool {
			_, ok := item.(primitive.StatPoint)
			return ok
		}),
		analytics.Apply(func(item any) {
			p := item.(primitive.StatPoint)
			points = append(points, analytics.TrendPoint{
				X: p.Start.Sub(integrationStart).Hours(), Y: p.Value,
			})
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for len(sub) > 0 {
		if _, _, err := pipe.Process(<-sub); err != nil {
			t.Fatal(err)
		}
	}
	trend, err := analytics.FitTrend(points)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Slope < 4 || trend.Slope > 8 {
		t.Errorf("recovered drift slope = %v, want about 6", trend.Slope)
	}
}
