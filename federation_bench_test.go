package megadata

import (
	"fmt"
	"testing"
	"time"

	"megadata/internal/baseline"
	"megadata/internal/federation"
	"megadata/internal/flowdb"
	"megadata/internal/flowtree"
	"megadata/internal/replication"
	"megadata/internal/simnet"
	"megadata/internal/workload"
)

// BenchmarkFig6_FederatedQuery measures the §IV cross-store query path:
// ship-always versus replica-served after break-even replication.
func BenchmarkFig6_FederatedQuery(b *testing.B) {
	build := func(policy replication.Policy) *federation.Federation {
		net := simnet.NewNetwork()
		clock := simnet.NewClock(time.Date(2026, 6, 1, 0, 0, 0, 0, time.UTC))
		fed := federation.New(net, clock, policy)
		for i, site := range []simnet.SiteID{"edge", "dc"} {
			db := flowdb.New()
			g, err := workload.NewFlowGen(workload.FlowConfig{Seed: int64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			tr, err := flowtree.New(2048)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range g.Records(5000) {
				tr.Add(r)
			}
			if err := db.Insert(flowdb.Row{
				Location: string(site), Start: clock.Now(), Width: time.Hour, Tree: tr,
			}); err != nil {
				b.Fatal(err)
			}
			fed.AddSite(site, db)
		}
		if err := net.Connect("edge", "dc", simnet.Link{BytesPerSecond: 1e7, Latency: 20 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
		return fed
	}
	b.Run("ship-always", func(b *testing.B) {
		fed := build(replication.Never{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cache-served", func(b *testing.B) {
		fed := build(replication.Never{})
		cache, err := federation.NewResultCache(1 << 20)
		if err != nil {
			b.Fatal(err)
		}
		fed.SetCache(cache)
		// Prime the cache.
		if _, _, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replica-served", func(b *testing.B) {
		fed := build(replication.Always{})
		// Prime the replica.
		if _, _, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := fed.Query("edge", `SELECT TOPK(10) AT dc FROM ALL`); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5_MemoryVsExact contrasts the Flowtree summary footprint with
// the exact per-flow store at increasing trace sizes — the "mega-dataset"
// motivation in numbers (E2).
func BenchmarkFig5_MemoryVsExact(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(fmt.Sprintf("flows=%d", n), func(b *testing.B) {
			g, err := workload.NewFlowGen(workload.FlowConfig{Seed: 7, Skew: 1.2})
			if err != nil {
				b.Fatal(err)
			}
			recs := g.Records(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				exact := baseline.New()
				tree, err := flowtree.New(4096)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range recs {
					exact.Add(r)
					tree.Add(r)
				}
				b.ReportMetric(float64(exact.MemoryBytes()), "exactB")
				b.ReportMetric(float64(tree.SizeBytes()), "treeB")
			}
		})
	}
}
